package trackers

import (
	"fmt"

	"impress/internal/clm"
)

// PRAC implements Per-Row Activation Counting, the in-DRAM mitigation
// JEDEC added to DDR5 (JESD79-5C) and that Section VI-F of the paper
// identifies as the scalable path for low Rowhammer thresholds: the DRAM
// array stores one activation counter per row, and when any counter
// crosses the alert threshold the device signals back-off (ALERT) and
// mitigates the row's victims under the following RFM/REF window.
//
// The paper's extension claim — "ImPress can be used with PRAC by having
// 7-bits of the counter for storing the fractional EACT" — is realized
// here by accumulating fixed-point clm.EACT weights per row: with
// ImPress-P feeding EACTs, PRAC tolerates Row-Press at its full
// provisioned threshold; with integer feeding (No-RP) it is exactly as
// vulnerable as any other counter scheme.
//
// The per-row counter array is modeled sparsely (a map): real hardware
// stores the counters in the DRAM rows themselves, so the tracker has no
// SRAM entry budget and no eviction behaviour to model.
type PRAC struct {
	alert clm.EACT // alert threshold, fixed point

	counts map[int64]clm.EACT
	// alerted rows await mitigation at the next RFM/REF opportunity.
	alerted []int64

	mitigations uint64
}

// PRACAlertDivisor converts the tolerated Rowhammer threshold into the
// per-row alert threshold. PRAC mitigates the row's victims promptly after
// ALERT, but the threshold must absorb the back-off service delay and the
// damage accumulated before the reset of a freshly refreshed victim; the
// standard provisioning uses half the threshold.
const PRACAlertDivisor = 2

// NewPRAC builds a PRAC instance tolerating trh.
func NewPRAC(trh float64) *PRAC {
	if trh <= 0 {
		panic("trackers: non-positive TRH")
	}
	alert := clm.EACT(trh / PRACAlertDivisor * float64(clm.One))
	if alert == 0 {
		panic("trackers: PRAC alert threshold underflow")
	}
	return &PRAC{alert: alert, counts: make(map[int64]clm.EACT)}
}

// Name implements Tracker.
func (p *PRAC) Name() string { return "prac" }

// InDRAM implements Tracker.
func (p *PRAC) InDRAM() bool { return true }

// AlertThreshold returns the fixed-point per-row alert level.
func (p *PRAC) AlertThreshold() clm.EACT { return p.alert }

// Mitigations returns the mitigation count.
func (p *PRAC) Mitigations() uint64 { return p.mitigations }

// PendingAlerts returns the number of rows whose ALERT has fired but whose
// mitigation has not yet been serviced.
func (p *PRAC) PendingAlerts() int { return len(p.alerted) }

// OnActivation implements Tracker: increment the row's in-array counter by
// the activation's weight; queue an ALERT when it crosses the threshold.
func (p *PRAC) OnActivation(row int64, weight clm.EACT) []int64 {
	if weight == 0 {
		panic("trackers: zero-weight activation")
	}
	before := p.counts[row]
	after := before + weight
	p.counts[row] = after
	if before < p.alert && after >= p.alert {
		p.alerted = append(p.alerted, row)
	}
	return nil
}

// OnRFM implements Tracker: service all pending alerts (the back-off
// protocol gives the device time to refresh victims); each serviced row's
// counter resets.
func (p *PRAC) OnRFM() []int64 {
	if len(p.alerted) == 0 {
		return nil
	}
	out := p.alerted
	p.alerted = nil
	for _, row := range out {
		p.counts[row] = 0
		p.mitigations++
	}
	return out
}

// ResetWindow implements Tracker: the refresh sweep restores every victim,
// so all per-row counters clear (real PRAC resets counters as rows are
// refreshed; the window model batches that).
func (p *PRAC) ResetWindow() {
	p.counts = make(map[int64]clm.EACT)
	p.alerted = nil
}

// Count returns the row's accumulated fixed-point activation count.
func (p *PRAC) Count(row int64) clm.EACT { return p.counts[row] }

// PRACStorageBitsPerRow returns the in-array counter width per row: the
// integer bits needed for the alert threshold plus the fractional EACT
// bits (0 for plain PRAC, 7 under ImPress-P — the paper's Section VI-F
// composition).
func PRACStorageBitsPerRow(trh float64, fracBits int) int {
	if trh <= 0 {
		panic("trackers: non-positive TRH")
	}
	intBits := 0
	for v := uint64(trh / PRACAlertDivisor); v > 0; v >>= 1 {
		intBits++
	}
	return intBits + fracBits
}

// String implements fmt.Stringer.
func (p *PRAC) String() string {
	return fmt.Sprintf("prac(alert=%.0f)", p.alert.Float())
}
