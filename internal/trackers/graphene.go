package trackers

import (
	"fmt"
	"math"

	"impress/internal/clm"
)

// Graphene is the memory-controller-side counter tracker of Park et al.
// (MICRO'20), built on the Misra-Gries / Space-Saving frequent-items
// algorithm: a small table of (row, counter) entries plus a spillover
// counter guarantees that any row activated more than W/(entries+1) times
// within a window is tracked, where W is the total activation count.
//
// A mitigation (victim refresh) is issued whenever a tracked row's counter
// reaches the internal threshold (TRH/3 in the paper's configuration, 1333
// for TRH = 4K); the row's counter then resets and the row re-earns its
// way to the next mitigation. The whole table resets every refresh window.
type Graphene struct {
	entries   int
	threshold clm.EACT // internal mitigation threshold, fixed point

	rows      map[int64]int // row -> slot index
	slotRow   []int64
	slotCount []clm.EACT
	slotUsed  []bool
	spillover clm.EACT

	mitigations uint64
}

// GrapheneInternalDivisor converts the tolerated Rowhammer threshold into
// Graphene's internal counter threshold (the paper uses TRH/3: the
// worst-case aggressor can accumulate damage across a counter reset and
// the Misra-Gries undercount, hence the 3x guard band).
const GrapheneInternalDivisor = 3

// GrapheneEntries returns the per-bank entry count needed to tolerate trh
// ("the number of tracking entries is inversely proportional to the
// threshold"): 448 entries at TRH = 4K, doubling to 896 at T* = 2K,
// exactly as Section VI-C reports.
func GrapheneEntries(trh float64) int {
	if trh <= 0 {
		panic("trackers: non-positive TRH")
	}
	const k = 448 * 4000 // calibration anchor from the paper
	return int(math.Ceil(k / trh))
}

// NewGraphene builds a per-bank Graphene instance sized for the tolerated
// threshold trh (in activations).
func NewGraphene(trh float64) *Graphene {
	entries := GrapheneEntries(trh)
	internal := trh / GrapheneInternalDivisor
	return newGrapheneRaw(entries, clm.EACT(internal*float64(clm.One)))
}

// NewGrapheneRaw builds a Graphene instance with an explicit entry count
// and fixed-point internal threshold; used by tests and the security
// analysis to probe off-nominal configurations.
func NewGrapheneRaw(entries int, threshold clm.EACT) *Graphene {
	return newGrapheneRaw(entries, threshold)
}

func newGrapheneRaw(entries int, threshold clm.EACT) *Graphene {
	if entries <= 0 {
		panic("trackers: graphene needs at least one entry")
	}
	if threshold == 0 {
		panic("trackers: graphene needs a positive threshold")
	}
	g := &Graphene{
		entries:   entries,
		threshold: threshold,
		rows:      make(map[int64]int, entries),
		slotRow:   make([]int64, entries),
		slotCount: make([]clm.EACT, entries),
		slotUsed:  make([]bool, entries),
	}
	return g
}

// Name implements Tracker.
func (g *Graphene) Name() string { return "graphene" }

// InDRAM implements Tracker.
func (g *Graphene) InDRAM() bool { return false }

// Entries returns the table size.
func (g *Graphene) Entries() int { return g.entries }

// Threshold returns the internal fixed-point mitigation threshold.
func (g *Graphene) Threshold() clm.EACT { return g.threshold }

// Mitigations returns the number of mitigations issued so far.
func (g *Graphene) Mitigations() uint64 { return g.mitigations }

// OnActivation implements Tracker using the Space-Saving update rule.
func (g *Graphene) OnActivation(row int64, weight clm.EACT) []int64 {
	if weight == 0 {
		panic("trackers: zero-weight activation")
	}
	slot, tracked := g.rows[row]
	if !tracked {
		if free := g.freeSlot(); free >= 0 {
			slot = free
			g.slotUsed[slot] = true
			g.slotRow[slot] = row
			g.slotCount[slot] = g.spillover
			g.rows[row] = slot
		} else {
			// Table full: evict the minimum entry; the newcomer inherits
			// its count (Space-Saving overestimates, which is safe — it
			// can only cause extra mitigations, never missed ones).
			slot = g.minSlot()
			g.spillover = g.slotCount[slot]
			delete(g.rows, g.slotRow[slot])
			g.slotRow[slot] = row
			g.rows[row] = slot
		}
	}
	g.slotCount[slot] += weight
	if g.slotCount[slot] >= g.threshold {
		g.slotCount[slot] = 0
		g.mitigations++
		return []int64{row}
	}
	return nil
}

func (g *Graphene) freeSlot() int {
	if len(g.rows) >= g.entries {
		return -1
	}
	for i, used := range g.slotUsed {
		if !used {
			return i
		}
	}
	return -1
}

func (g *Graphene) minSlot() int {
	best := -1
	var bestCount clm.EACT
	for i := range g.slotCount {
		if !g.slotUsed[i] {
			continue
		}
		if best == -1 || g.slotCount[i] < bestCount {
			best = i
			bestCount = g.slotCount[i]
		}
	}
	if best < 0 {
		panic("trackers: minSlot on empty table")
	}
	return best
}

// Count returns the tracked fixed-point count for row (zero if untracked);
// exposed for tests and the security analysis.
func (g *Graphene) Count(row int64) clm.EACT {
	if slot, ok := g.rows[row]; ok {
		return g.slotCount[slot]
	}
	return 0
}

// OnRFM implements Tracker (no-op: Graphene mitigates inline).
func (g *Graphene) OnRFM() []int64 { return nil }

// ResetWindow implements Tracker: the refresh sweep has restored all
// victims, so all counters clear.
func (g *Graphene) ResetWindow() {
	for i := range g.slotUsed {
		g.slotUsed[i] = false
		g.slotCount[i] = 0
	}
	g.rows = make(map[int64]int, g.entries)
	g.spillover = 0
}

// String implements fmt.Stringer.
func (g *Graphene) String() string {
	return fmt.Sprintf("graphene(entries=%d, threshold=%.1f)", g.entries, g.threshold.Float())
}
