package trackers

import (
	"fmt"

	"impress/internal/clm"
	"impress/internal/errs"
)

// SlotState is one occupied entry of a counter-table tracker (Graphene,
// Mithril), identified by its slot index so a restore reproduces the
// exact table layout — eviction scans walk slots in index order, so the
// layout is observable.
type SlotState struct {
	Slot  int      `json:"slot"`
	Row   int64    `json:"row"`
	Count clm.EACT `json:"count"`
}

// State is a kind-tagged serializable snapshot of a tracker's mutable
// state, used by warmup checkpoints. Only the fields relevant to the
// tagged kind are populated; sizing parameters (entry counts,
// thresholds, probabilities) are not captured — they are rebuilt from
// the simulation config, and RestoreState assumes the receiver was
// constructed with the same config that produced the snapshot.
type State struct {
	Kind string `json:"kind"`

	// Counter tables (graphene, mithril): occupied slots in index order.
	Slots     []SlotState `json:"slots,omitempty"`
	Spillover clm.EACT    `json:"spillover,omitempty"` // graphene only

	// Probabilistic trackers (para, mint): the private RNG stream.
	RNG [4]uint64 `json:"rng"`

	// MINT registers.
	SAN      clm.EACT `json:"san,omitempty"`
	CAN      clm.EACT `json:"can,omitempty"`
	SAR      int64    `json:"sar,omitempty"`
	SARValid bool     `json:"sarValid,omitempty"`

	Mitigations uint64 `json:"mitigations,omitempty"`
}

// Snapshotter is implemented by trackers that support warmup
// checkpointing. The restored tracker must be behaviorally identical to
// the snapshotted one: same future mitigations for the same future
// activation stream.
type Snapshotter interface {
	Snapshot() State
	RestoreState(State) error
}

func restoreKindErr(want, got string) error {
	return fmt.Errorf("trackers: %w: checkpoint state kind %q, want %q",
		errs.ErrBadSpec, got, want)
}

// Snapshot implements Snapshotter.
func (g *Graphene) Snapshot() State {
	return State{
		Kind:        g.Name(),
		Slots:       snapshotSlots(g.slotUsed, g.slotRow, g.slotCount),
		Spillover:   g.spillover,
		Mitigations: g.mitigations,
	}
}

// RestoreState implements Snapshotter.
func (g *Graphene) RestoreState(s State) error {
	if s.Kind != g.Name() {
		return restoreKindErr(g.Name(), s.Kind)
	}
	g.ResetWindow()
	if err := restoreSlots(s.Slots, g.rows, g.slotUsed, g.slotRow, g.slotCount); err != nil {
		return err
	}
	g.spillover = s.Spillover
	g.mitigations = s.Mitigations
	return nil
}

// Snapshot implements Snapshotter.
func (m *Mithril) Snapshot() State {
	return State{
		Kind:        m.Name(),
		Slots:       snapshotSlots(m.slotUsed, m.slotRow, m.slotCount),
		Mitigations: m.mitigations,
	}
}

// RestoreState implements Snapshotter.
func (m *Mithril) RestoreState(s State) error {
	if s.Kind != m.Name() {
		return restoreKindErr(m.Name(), s.Kind)
	}
	m.ResetWindow()
	if err := restoreSlots(s.Slots, m.rows, m.slotUsed, m.slotRow, m.slotCount); err != nil {
		return err
	}
	m.mitigations = s.Mitigations
	return nil
}

// Snapshot implements Snapshotter.
func (p *PARA) Snapshot() State {
	return State{Kind: p.Name(), RNG: p.rng.State(), Mitigations: p.mitigations}
}

// RestoreState implements Snapshotter.
func (p *PARA) RestoreState(s State) error {
	if s.Kind != p.Name() {
		return restoreKindErr(p.Name(), s.Kind)
	}
	p.rng.SetState(s.RNG)
	p.mitigations = s.Mitigations
	return nil
}

// Snapshot implements Snapshotter.
func (m *MINT) Snapshot() State {
	return State{
		Kind:        m.Name(),
		RNG:         m.rng.State(),
		SAN:         m.san,
		CAN:         m.can,
		SAR:         m.sar,
		SARValid:    m.sarValid,
		Mitigations: m.mitigations,
	}
}

// RestoreState implements Snapshotter. The constructor's initial drawSAN
// is overwritten wholesale: SAN, CAN, SAR and the RNG stream all come
// from the snapshot, so the restored instance replays the original's
// exact future slot selections.
func (m *MINT) RestoreState(s State) error {
	if s.Kind != m.Name() {
		return restoreKindErr(m.Name(), s.Kind)
	}
	m.rng.SetState(s.RNG)
	m.san = s.SAN
	m.can = s.CAN
	m.sar = s.SAR
	m.sarValid = s.SARValid
	m.mitigations = s.Mitigations
	return nil
}

func snapshotSlots(used []bool, rows []int64, counts []clm.EACT) []SlotState {
	var out []SlotState
	for i, u := range used {
		if !u {
			continue
		}
		out = append(out, SlotState{Slot: i, Row: rows[i], Count: counts[i]})
	}
	return out
}

// restoreSlots applies a slot snapshot onto a freshly reset table. The
// caller's table maps must be empty (ResetWindow) before the call.
func restoreSlots(slots []SlotState, index map[int64]int, used []bool, rows []int64, counts []clm.EACT) error {
	for _, s := range slots {
		if s.Slot < 0 || s.Slot >= len(used) {
			return fmt.Errorf("trackers: %w: checkpoint slot %d out of range [0,%d)",
				errs.ErrBadSpec, s.Slot, len(used))
		}
		if used[s.Slot] {
			return fmt.Errorf("trackers: %w: checkpoint slot %d duplicated",
				errs.ErrBadSpec, s.Slot)
		}
		if _, dup := index[s.Row]; dup {
			return fmt.Errorf("trackers: %w: checkpoint row %d duplicated",
				errs.ErrBadSpec, s.Row)
		}
		used[s.Slot] = true
		rows[s.Slot] = s.Row
		counts[s.Slot] = s.Count
		index[s.Row] = s.Slot
	}
	return nil
}
