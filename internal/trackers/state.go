package trackers

import (
	"fmt"
	"sort"

	"impress/internal/clm"
	"impress/internal/errs"
)

// SlotState is one occupied entry of a counter-table tracker (Graphene,
// Mithril), identified by its slot index so a restore reproduces the
// exact table layout — eviction scans walk slots in index order, so the
// layout is observable.
type SlotState struct {
	Slot  int      `json:"slot"`
	Row   int64    `json:"row"`
	Count clm.EACT `json:"count"`
}

// State is a kind-tagged serializable snapshot of a tracker's mutable
// state, used by warmup checkpoints. Only the fields relevant to the
// tagged kind are populated; sizing parameters (entry counts,
// thresholds, probabilities) are not captured — they are rebuilt from
// the simulation config, and RestoreState assumes the receiver was
// constructed with the same config that produced the snapshot.
type State struct {
	Kind string `json:"kind"`

	// Counter tables (graphene, mithril, abacus): occupied slots in index
	// order. Hydra reuses the field for its per-row exact counters, keyed
	// by row (Slot unused) and sorted by row for deterministic encoding.
	Slots     []SlotState `json:"slots,omitempty"`
	Spillover clm.EACT    `json:"spillover,omitempty"` // graphene only

	// Groups holds hydra's non-zero GCT counters (Slot = group index).
	Groups []SlotState `json:"groups,omitempty"`

	// Probabilistic trackers (para, mint): the private RNG stream.
	RNG [4]uint64 `json:"rng"`

	// MINT registers.
	SAN      clm.EACT `json:"san,omitempty"`
	CAN      clm.EACT `json:"can,omitempty"`
	SAR      int64    `json:"sar,omitempty"`
	SARValid bool     `json:"sarValid,omitempty"`

	Mitigations uint64 `json:"mitigations,omitempty"`
}

// Snapshotter is implemented by trackers that support warmup
// checkpointing. The restored tracker must be behaviorally identical to
// the snapshotted one: same future mitigations for the same future
// activation stream.
type Snapshotter interface {
	Snapshot() State
	RestoreState(State) error
}

func restoreKindErr(want, got string) error {
	return fmt.Errorf("trackers: %w: checkpoint state kind %q, want %q",
		errs.ErrBadSpec, got, want)
}

// Snapshot implements Snapshotter.
func (g *Graphene) Snapshot() State {
	return State{
		Kind:        g.Name(),
		Slots:       snapshotSlots(g.slotUsed, g.slotRow, g.slotCount),
		Spillover:   g.spillover,
		Mitigations: g.mitigations,
	}
}

// RestoreState implements Snapshotter.
func (g *Graphene) RestoreState(s State) error {
	if s.Kind != g.Name() {
		return restoreKindErr(g.Name(), s.Kind)
	}
	g.ResetWindow()
	if err := restoreSlots(s.Slots, g.rows, g.slotUsed, g.slotRow, g.slotCount); err != nil {
		return err
	}
	g.spillover = s.Spillover
	g.mitigations = s.Mitigations
	return nil
}

// Snapshot implements Snapshotter.
func (m *Mithril) Snapshot() State {
	return State{
		Kind:        m.Name(),
		Slots:       snapshotSlots(m.slotUsed, m.slotRow, m.slotCount),
		Mitigations: m.mitigations,
	}
}

// RestoreState implements Snapshotter.
func (m *Mithril) RestoreState(s State) error {
	if s.Kind != m.Name() {
		return restoreKindErr(m.Name(), s.Kind)
	}
	m.ResetWindow()
	if err := restoreSlots(s.Slots, m.rows, m.slotUsed, m.slotRow, m.slotCount); err != nil {
		return err
	}
	m.mitigations = s.Mitigations
	return nil
}

// Snapshot implements Snapshotter.
func (p *PARA) Snapshot() State {
	return State{Kind: p.Name(), RNG: p.rng.State(), Mitigations: p.mitigations}
}

// RestoreState implements Snapshotter.
func (p *PARA) RestoreState(s State) error {
	if s.Kind != p.Name() {
		return restoreKindErr(p.Name(), s.Kind)
	}
	p.rng.SetState(s.RNG)
	p.mitigations = s.Mitigations
	return nil
}

// Snapshot implements Snapshotter.
func (m *MINT) Snapshot() State {
	return State{
		Kind:        m.Name(),
		RNG:         m.rng.State(),
		SAN:         m.san,
		CAN:         m.can,
		SAR:         m.sar,
		SARValid:    m.sarValid,
		Mitigations: m.mitigations,
	}
}

// RestoreState implements Snapshotter. The constructor's initial drawSAN
// is overwritten wholesale: SAN, CAN, SAR and the RNG stream all come
// from the snapshot, so the restored instance replays the original's
// exact future slot selections.
func (m *MINT) RestoreState(s State) error {
	if s.Kind != m.Name() {
		return restoreKindErr(m.Name(), s.Kind)
	}
	m.rng.SetState(s.RNG)
	m.san = s.SAN
	m.can = s.CAN
	m.sar = s.SAR
	m.sarValid = s.SARValid
	m.mitigations = s.Mitigations
	return nil
}

// Snapshot implements Snapshotter.
func (a *ABACuS) Snapshot() State {
	return State{
		Kind:        a.Name(),
		Slots:       snapshotSlots(a.slotUsed, a.slotRow, a.slotCount),
		Mitigations: a.mitigations,
	}
}

// RestoreState implements Snapshotter.
func (a *ABACuS) RestoreState(s State) error {
	if s.Kind != a.Name() {
		return restoreKindErr(a.Name(), s.Kind)
	}
	a.ResetWindow()
	if err := restoreSlots(s.Slots, a.rows, a.slotUsed, a.slotRow, a.slotCount); err != nil {
		return err
	}
	a.mitigations = s.Mitigations
	return nil
}

// Snapshot implements Snapshotter. GCT counters are captured sparsely by
// group index; per-row exact counters go into Slots keyed by row, sorted
// so the encoding is deterministic (the backing store is a map).
func (h *Hydra) Snapshot() State {
	s := State{Kind: h.Name(), Mitigations: h.mitigations}
	for g, c := range h.gct {
		if c != 0 {
			s.Groups = append(s.Groups, SlotState{Slot: g, Count: c})
		}
	}
	rows := make([]int64, 0, len(h.rows))
	for row := range h.rows {
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for _, row := range rows {
		s.Slots = append(s.Slots, SlotState{Row: row, Count: h.rows[row]})
	}
	return s
}

// RestoreState implements Snapshotter.
func (h *Hydra) RestoreState(s State) error {
	if s.Kind != h.Name() {
		return restoreKindErr(h.Name(), s.Kind)
	}
	h.ResetWindow()
	for _, g := range s.Groups {
		if g.Slot < 0 || g.Slot >= len(h.gct) {
			return fmt.Errorf("trackers: %w: checkpoint group %d out of range [0,%d)",
				errs.ErrBadSpec, g.Slot, len(h.gct))
		}
		h.gct[g.Slot] = g.Count
	}
	for _, r := range s.Slots {
		if _, dup := h.rows[r.Row]; dup {
			return fmt.Errorf("trackers: %w: checkpoint row %d duplicated",
				errs.ErrBadSpec, r.Row)
		}
		h.rows[r.Row] = r.Count
	}
	h.mitigations = s.Mitigations
	return nil
}

func snapshotSlots(used []bool, rows []int64, counts []clm.EACT) []SlotState {
	var out []SlotState
	for i, u := range used {
		if !u {
			continue
		}
		out = append(out, SlotState{Slot: i, Row: rows[i], Count: counts[i]})
	}
	return out
}

// restoreSlots applies a slot snapshot onto a freshly reset table. The
// caller's table maps must be empty (ResetWindow) before the call.
func restoreSlots(slots []SlotState, index map[int64]int, used []bool, rows []int64, counts []clm.EACT) error {
	for _, s := range slots {
		if s.Slot < 0 || s.Slot >= len(used) {
			return fmt.Errorf("trackers: %w: checkpoint slot %d out of range [0,%d)",
				errs.ErrBadSpec, s.Slot, len(used))
		}
		if used[s.Slot] {
			return fmt.Errorf("trackers: %w: checkpoint slot %d duplicated",
				errs.ErrBadSpec, s.Slot)
		}
		if _, dup := index[s.Row]; dup {
			return fmt.Errorf("trackers: %w: checkpoint row %d duplicated",
				errs.ErrBadSpec, s.Row)
		}
		used[s.Slot] = true
		rows[s.Slot] = s.Row
		counts[s.Slot] = s.Count
		index[s.Row] = s.Slot
	}
	return nil
}
