package trackers

import (
	"fmt"

	"impress/internal/clm"
	"impress/internal/stats"
)

// MINT is the minimalist in-DRAM probabilistic tracker of Qureshi et al.
// (MICRO'24): a single entry per bank. It keeps three registers:
//
//   - SAN (Selected Activation Number): which activation slot in the
//     current RFM interval has been randomly selected for mitigation;
//   - CAN (Current Activation Number): how many activations (weighted by
//     EACT under ImPress-P) have occurred in the current interval;
//   - SAR (Selected Address Register): the row that landed on the selected
//     slot.
//
// At each RFM, the row in SAR (if any) is mitigated, CAN resets, and a
// fresh SAN is drawn uniformly over the upcoming RFMTH activation slots.
//
// Under ImPress-P, CAN gains clm.FracBits fractional bits and each
// activation advances it by its EACT; a row's chance of covering the
// selected slot is therefore proportional to its EACT, exactly as Section
// VI-C describes ("each activation gets a selection probability in
// proportion to the EACT").
type MINT struct {
	rfmth int
	rng   *stats.Rand

	san      clm.EACT // selected slot, fixed point, in (0, rfmth]
	can      clm.EACT // accumulated weighted activations this interval
	sar      int64
	sarValid bool

	mitigations uint64
}

// MINTBaseTolerated is the tolerated Rowhammer threshold per unit of
// RFMTH for MINT at the paper's 0.1 FIT target: RFMTH = 80 tolerates
// TRH = 1.6K (Section III-B), so the constant is 20.
const MINTBaseTolerated = 20.0

// MINTToleratedTRH returns the Rowhammer threshold MINT tolerates at the
// given RFM threshold (the paper's figure of merit for MINT, which has no
// other configurability).
func MINTToleratedTRH(rfmth int) float64 {
	return MINTBaseTolerated * float64(rfmth)
}

// MINTToleratedTRHImpressN returns the threshold MINT tolerates when
// ImPress-N leaves sub-tRC Row-Press unmitigated: the decoy pattern
// inflates per-round damage by (1+alpha), so the tolerated threshold
// scales by the same factor (1.6K -> 3.1K at alpha = 1, 2.1K at 0.35,
// Section VI-C / Appendix A).
func MINTToleratedTRHImpressN(rfmth int, alpha float64) float64 {
	return MINTToleratedTRH(rfmth) * (1 + alpha)
}

// NewMINT builds a per-bank MINT instance with the given RFM threshold,
// drawing slot selections from rng.
func NewMINT(rfmth int, rng *stats.Rand) *MINT {
	if rfmth <= 0 {
		panic("trackers: MINT needs positive RFMTH")
	}
	m := &MINT{rfmth: rfmth, rng: rng}
	m.drawSAN()
	return m
}

func (m *MINT) drawSAN() {
	// Uniform over the integer slots 1..RFMTH, held in fixed point. SAN
	// itself stays integer-granular (the paper leaves SAN unchanged under
	// ImPress-P; only CAN gains fractional bits): an activation is
	// selected when its CAN interval covers the slot boundary, which
	// weights selection by EACT.
	slot := 1 + m.rng.Uint64n(uint64(m.rfmth))
	m.san = clm.EACT(slot << clm.FracBits)
}

// Name implements Tracker.
func (m *MINT) Name() string { return "mint" }

// InDRAM implements Tracker.
func (m *MINT) InDRAM() bool { return true }

// RFMTH returns the configured RFM threshold.
func (m *MINT) RFMTH() int { return m.rfmth }

// Mitigations returns the number of mitigations performed under RFM.
func (m *MINT) Mitigations() uint64 { return m.mitigations }

// OnActivation implements Tracker: advance CAN by the activation's weight
// and capture the row if it crosses the selected slot.
func (m *MINT) OnActivation(row int64, weight clm.EACT) []int64 {
	if weight == 0 {
		panic("trackers: zero-weight activation")
	}
	prev := m.can
	m.can += weight
	if prev < m.san && m.san <= m.can {
		m.sar = row
		m.sarValid = true
	}
	return nil
}

// OnRFM implements Tracker: mitigate the captured row (if any), then reset
// the interval.
func (m *MINT) OnRFM() []int64 {
	var out []int64
	if m.sarValid {
		out = []int64{m.sar}
		m.mitigations++
	}
	m.sarValid = false
	m.can = 0
	m.drawSAN()
	return out
}

// ResetWindow implements Tracker.
func (m *MINT) ResetWindow() {
	m.sarValid = false
	m.can = 0
	m.drawSAN()
}

// String implements fmt.Stringer.
func (m *MINT) String() string { return fmt.Sprintf("mint(rfmth=%d)", m.rfmth) }
