package trackers

import (
	"fmt"
	"math"

	"impress/internal/clm"
	"impress/internal/stats"
)

// PARA is the probabilistic memory-controller tracker of Kim et al.
// (ISCA'14): every activation is selected for mitigation with a small
// probability p, requiring no tracking state at all.
//
// Under ImPress-P the selection probability of an activation becomes
// p * EACT, so accesses that kept their row open longer are proportionally
// more likely to trigger a mitigation — this is the paper's Section VI-C
// "Impact on PARA" modification, implemented here by drawing a uniform
// fixed-point variate against p scaled by the activation weight.
type PARA struct {
	p   float64
	rng *stats.Rand

	mitigations uint64
}

// PARAReliabilityConstant is -ln(failure probability per attack attempt)
// used to derive p from the tolerated threshold for the paper's 0.1 FIT
// bank-failure target: p = C / TRH. Calibrated so TRH = 4K gives the
// paper's p = 1/184 (and T* = 2K gives 1/92, matching Appendix A).
const PARAReliabilityConstant = 4000.0 / 184.0

// PARAProbability returns the per-activation mitigation probability needed
// to tolerate trh at the paper's 0.1 FIT target.
func PARAProbability(trh float64) float64 {
	if trh <= 0 {
		panic("trackers: non-positive TRH")
	}
	return math.Min(1, PARAReliabilityConstant/trh)
}

// NewPARA builds a per-bank PARA instance tolerating trh, drawing
// randomness from rng (which the caller seeds deterministically).
func NewPARA(trh float64, rng *stats.Rand) *PARA {
	return &PARA{p: PARAProbability(trh), rng: rng}
}

// NewPARAWithProbability builds a PARA instance with an explicit p; used by
// the attack analysis, which follows the paper's Appendix B constants.
func NewPARAWithProbability(p float64, rng *stats.Rand) *PARA {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("trackers: PARA probability %v out of (0,1]", p))
	}
	return &PARA{p: p, rng: rng}
}

// Name implements Tracker.
func (p *PARA) Name() string { return "para" }

// InDRAM implements Tracker.
func (p *PARA) InDRAM() bool { return false }

// Probability returns the configured base selection probability.
func (p *PARA) Probability() float64 { return p.p }

// Mitigations returns the number of mitigations issued so far.
func (p *PARA) Mitigations() uint64 { return p.mitigations }

// OnActivation implements Tracker: select the row with probability
// p * weight (saturating at 1, as in the paper's Appendix B analysis).
func (p *PARA) OnActivation(row int64, weight clm.EACT) []int64 {
	if weight == 0 {
		panic("trackers: zero-weight activation")
	}
	prob := p.p * weight.Float()
	if p.rng.Bernoulli(prob) {
		p.mitigations++
		return []int64{row}
	}
	return nil
}

// OnRFM implements Tracker (no-op).
func (p *PARA) OnRFM() []int64 { return nil }

// ResetWindow implements Tracker (PARA is stateless).
func (p *PARA) ResetWindow() {}

// String implements fmt.Stringer.
func (p *PARA) String() string { return fmt.Sprintf("para(p=1/%.0f)", 1/p.p) }
