// Package trackers implements the four Rowhammer aggressor-row trackers the
// paper analyzes (Section II-C / III-B):
//
//   - Graphene: counter-based, memory-controller side (Misra-Gries).
//   - PARA: probabilistic, memory-controller side.
//   - Mithril: counter-based, in-DRAM, mitigating under RFM.
//   - MINT: probabilistic, in-DRAM, single entry per bank.
//
// All trackers operate on fixed-point activation weights (clm.EACT) so that
// the same implementation serves the No-RP baseline (every ACT weighs
// exactly clm.One), ExPress and ImPress-N (retuned thresholds, integer
// weights) and ImPress-P (fractional weights). This is precisely the
// modification the paper describes: "a counter-based tracker would
// increment the counter by EACT instead of 1; a probabilistic solution
// would select the row with probability p x EACT".
package trackers

import "impress/internal/clm"

// Tracker is the common interface of all aggressor-row trackers. One
// Tracker instance guards one DRAM bank.
type Tracker interface {
	// Name returns the tracker's short name ("graphene", "para", ...).
	Name() string

	// InDRAM reports whether the tracker lives inside the DRAM chip (its
	// mitigations happen under RFM) rather than in the memory controller
	// (its mitigations are explicit victim refreshes on the bus).
	InDRAM() bool

	// OnActivation records an activation of row with the given fixed-point
	// weight (clm.One for a plain ACT). For memory-controller trackers it
	// returns the aggressor rows whose victims must be refreshed now; for
	// in-DRAM trackers it always returns nil (they mitigate at RFM).
	OnActivation(row int64, weight clm.EACT) []int64

	// OnRFM is invoked when an RFM command reaches the bank. In-DRAM
	// trackers return the aggressor rows they mitigate under this RFM;
	// memory-controller trackers ignore it.
	OnRFM() []int64

	// ResetWindow is invoked once per refresh window (tREFW): victims have
	// all been refreshed by the regular refresh sweep, so accumulated
	// state is cleared.
	ResetWindow()
}

// BlastRadius is the number of rows on each side of an aggressor that must
// be refreshed by a mitigation (the paper's Appendix B uses 2, i.e. 4
// victim rows and 4 mitigative activations per mitigation).
const BlastRadius = 2

// VictimsOf returns the victim rows of an aggressor: BlastRadius rows on
// each side.
func VictimsOf(aggressor int64) []int64 {
	victims := make([]int64, 0, 2*BlastRadius)
	for d := int64(1); d <= BlastRadius; d++ {
		victims = append(victims, aggressor-d, aggressor+d)
	}
	return victims
}

// ActsPerMitigation is the bus cost of one memory-controller-side
// mitigation: one ACT per victim row (4 activations, per Appendix B).
const ActsPerMitigation = 2 * BlastRadius

// RowAddressBits is the per-bank row address width assumed by the storage
// model: the paper's 32 GB channels with 64 banks and 8 KB rows leave
// 64 Ki rows per bank; we provision one spare bit as real designs do.
const RowAddressBits = 17
