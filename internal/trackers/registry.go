package trackers

import (
	"impress/internal/stats"
)

// The tracker registry: the single source of truth for the zoo of
// trackers every cross-cutting surface must cover — the simulator's
// TrackerKind validation and factory, the security sweep universe, the
// storage-comparison table, the synthesis target list and the CLIs'
// flag help. The exhaustiveness test in the experiments package walks
// this list, so adding an entry here forces every one of those surfaces
// to grow with it (and forgetting to register a new tracker fails the
// zoo test that asserts registration). PRAC, TWiCe and the vendor TRR
// models stay outside the registry: they are analytic-side models
// without the Snapshotter support the simulator's checkpoint contract
// requires.

// Info describes one registered tracker.
type Info struct {
	// Name is the tracker's registry key, equal to Tracker.Name() of
	// every instance New builds.
	Name string
	// InDRAM reports where the tracker lives (in-DRAM trackers mitigate
	// under RFM).
	InDRAM bool
	// New builds a per-bank instance tuned to the tolerated threshold
	// trh (already design-reduced to T*). rfmth configures RFM-paced
	// in-DRAM trackers. rng is the caller's seed stream: probabilistic
	// trackers split their own private stream from it at construction;
	// deterministic trackers leave it untouched, so adding one to the
	// registry never perturbs an existing run's RNG chain.
	New func(trh float64, rfmth int, rng *stats.Rand) Tracker
}

// registry is kept in sorted-by-name order; Registry returns a copy so
// callers cannot perturb it.
var registry = []Info{
	{
		Name: "abacus",
		New: func(trh float64, _ int, _ *stats.Rand) Tracker {
			return NewABACuS(trh)
		},
	},
	{
		Name: "graphene",
		New: func(trh float64, _ int, _ *stats.Rand) Tracker {
			return NewGraphene(trh)
		},
	},
	{
		Name: "hydra",
		New: func(trh float64, _ int, _ *stats.Rand) Tracker {
			return NewHydra(trh)
		},
	},
	{
		Name:   "mint",
		InDRAM: true,
		New: func(_ float64, rfmth int, rng *stats.Rand) Tracker {
			return NewMINT(rfmth, rng.Split())
		},
	},
	{
		Name:   "mithril",
		InDRAM: true,
		New: func(trh float64, rfmth int, _ *stats.Rand) Tracker {
			return NewMithril(trh, rfmth)
		},
	},
	{
		Name: "para",
		New: func(trh float64, _ int, rng *stats.Rand) Tracker {
			return NewPARA(trh, rng.Split())
		},
	},
}

// Registry returns every registered tracker, sorted by name.
func Registry() []Info {
	return append([]Info(nil), registry...)
}

// Names returns the registered tracker names, sorted.
func Names() []string {
	names := make([]string, len(registry))
	for i, info := range registry {
		names[i] = info.Name
	}
	return names
}

// ByName looks up a registered tracker.
func ByName(name string) (Info, bool) {
	for _, info := range registry {
		if info.Name == name {
			return info, true
		}
	}
	return Info{}, false
}
