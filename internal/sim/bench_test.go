package sim

import (
	"testing"

	"impress/internal/core"
	"impress/internal/trace"
)

// Simulator throughput benchmarks: core cycles simulated per second for a
// memory-light and a memory-bound workload. These bound the wall-clock
// cost of the figure reproductions.

func benchRun(b *testing.B, workload string, design core.Design, tracker TrackerKind) {
	b.Helper()
	w, err := trace.WorkloadByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	totalCycles := int64(0)
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(w, design, tracker)
		cfg.WarmupInstructions = 5_000
		cfg.RunInstructions = 25_000
		res := Run(cfg)
		totalCycles += res.Cycles
	}
	b.ReportMetric(float64(totalCycles)/float64(b.N), "cycles/run")
}

func BenchmarkSimGCCNoRP(b *testing.B) {
	benchRun(b, "gcc", core.NewDesign(core.NoRP), TrackerNone)
}

func BenchmarkSimCopyNoRP(b *testing.B) {
	benchRun(b, "copy", core.NewDesign(core.NoRP), TrackerNone)
}

func BenchmarkSimCopyImpressPGraphene(b *testing.B) {
	benchRun(b, "copy", core.NewDesign(core.ImpressP), TrackerGraphene)
}

func BenchmarkSimCopyImpressNGraphene(b *testing.B) {
	benchRun(b, "copy", core.NewDesign(core.ImpressN), TrackerGraphene)
}

func BenchmarkSimCopyMINT(b *testing.B) {
	w, _ := trace.WorkloadByName("copy")
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(w, core.NewDesign(core.ImpressP), TrackerMINT)
		cfg.DesignTRH = 1600
		cfg.WarmupInstructions = 5_000
		cfg.RunInstructions = 25_000
		Run(cfg)
	}
}

// --- Event-driven vs cycle-accurate clocking (per-run speedup) ---
//
// BenchmarkClock* pairs isolate the event-driven clock: the EventDriven/
// CycleAccurate ratio per workload is the idle-skipping win. The
// low-intensity workload (LLC-resident, 0.25 post-L2 accesses per KI) is
// the class the optimization targets — expect >=3x there; gcc (lowest
// MPKI of the paper's set) and mcf/copy bound the win on progressively
// busier memory systems, where the requirement is only "no slowdown".

// lowIntensityWorkload is an LLC-resident, very low-MPKI profile: long
// pure-compute stretches with a mostly quiescent DRAM subsystem.
func lowIntensityWorkload() trace.Workload {
	p := trace.Profile{
		Name: "lowmem", MemPerKI: 0.25, SeqRun: 4,
		FootprintLines: (8 << 20) / 64, WriteFrac: 0.3, ReuseFrac: 0.5, Streams: 2,
	}
	return trace.Workload{
		Name: "lowmem",
		NewGenerator: func(coreID int, seed uint64) trace.Generator {
			return trace.New(p, uint64(coreID)*(512<<20)/64, seed+uint64(coreID)*0x9e3779b97f4a7c15)
		},
	}
}

func benchClock(b *testing.B, w trace.Workload, clock ClockMode) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(w, core.NewDesign(core.NoRP), TrackerNone)
		cfg.Clock = clock
		cfg.WarmupInstructions = 50_000
		cfg.RunInstructions = 250_000
		Run(cfg)
	}
}

func namedWorkload(b *testing.B, name string) trace.Workload {
	b.Helper()
	w, err := trace.WorkloadByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkClockLowIntensityEventDriven(b *testing.B) {
	benchClock(b, lowIntensityWorkload(), ClockEventDriven)
}

func BenchmarkClockLowIntensityCycleAccurate(b *testing.B) {
	benchClock(b, lowIntensityWorkload(), ClockCycleAccurate)
}

func BenchmarkClockGCCEventDriven(b *testing.B) {
	benchClock(b, namedWorkload(b, "gcc"), ClockEventDriven)
}

func BenchmarkClockGCCCycleAccurate(b *testing.B) {
	benchClock(b, namedWorkload(b, "gcc"), ClockCycleAccurate)
}

func BenchmarkClockMcfEventDriven(b *testing.B) {
	benchClock(b, namedWorkload(b, "mcf"), ClockEventDriven)
}

func BenchmarkClockMcfCycleAccurate(b *testing.B) {
	benchClock(b, namedWorkload(b, "mcf"), ClockCycleAccurate)
}

func BenchmarkClockCopyEventDriven(b *testing.B) {
	benchClock(b, namedWorkload(b, "copy"), ClockEventDriven)
}

func BenchmarkClockCopyCycleAccurate(b *testing.B) {
	benchClock(b, namedWorkload(b, "copy"), ClockCycleAccurate)
}
