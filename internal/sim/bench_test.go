package sim

import (
	"testing"

	"impress/internal/core"
	"impress/internal/trace"
)

// Simulator throughput benchmarks: core cycles simulated per second for a
// memory-light and a memory-bound workload. These bound the wall-clock
// cost of the figure reproductions.

func benchRun(b *testing.B, workload string, design core.Design, tracker TrackerKind) {
	b.Helper()
	w, err := trace.WorkloadByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	totalCycles := int64(0)
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(w, design, tracker)
		cfg.WarmupInstructions = 5_000
		cfg.RunInstructions = 25_000
		res := Run(cfg)
		totalCycles += res.Cycles
	}
	b.ReportMetric(float64(totalCycles)/float64(b.N), "cycles/run")
}

func BenchmarkSimGCCNoRP(b *testing.B) {
	benchRun(b, "gcc", core.NewDesign(core.NoRP), TrackerNone)
}

func BenchmarkSimCopyNoRP(b *testing.B) {
	benchRun(b, "copy", core.NewDesign(core.NoRP), TrackerNone)
}

func BenchmarkSimCopyImpressPGraphene(b *testing.B) {
	benchRun(b, "copy", core.NewDesign(core.ImpressP), TrackerGraphene)
}

func BenchmarkSimCopyImpressNGraphene(b *testing.B) {
	benchRun(b, "copy", core.NewDesign(core.ImpressN), TrackerGraphene)
}

func BenchmarkSimCopyMINT(b *testing.B) {
	w, _ := trace.WorkloadByName("copy")
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(w, core.NewDesign(core.ImpressP), TrackerMINT)
		cfg.DesignTRH = 1600
		cfg.WarmupInstructions = 5_000
		cfg.RunInstructions = 25_000
		Run(cfg)
	}
}
