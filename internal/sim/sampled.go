package sim

import (
	"fmt"
	"math"
	"sort"

	"impress/internal/memctrl"
	"impress/internal/trace"
)

// Interval-sampling geometry (SMARTS-style). The run is divided into
// sampledIntervals equal periods; each period opens with a detailed
// window — simulated exactly under the event-driven clock — whose first
// quarter re-warms microarchitectural state perturbed by the preceding
// fast-forward (queues, row buffers, MSHRs) and whose remainder is
// measured. The rest of the period is functionally fast-forwarded: the
// trace advances and the LLC is warmed, but no time passes and the
// memory system sees nothing. Per-interval measurements are treated as
// i.i.d. samples and reported with t-distribution 95% confidence
// intervals.
const (
	sampledIntervals = 10
	// sampledMinPeriod is the smallest per-interval instruction budget
	// for which the detail/warm split stays meaningful; Validate rejects
	// sampled configs below sampledIntervals*sampledMinPeriod.
	sampledMinPeriod = 1_000
	// sampledDetailDiv: the detailed window is period/sampledDetailDiv.
	sampledDetailDiv = 5
	// sampledMinMeasured is the fewest measured intervals before the
	// early-stop test may trigger (a CI from 2-3 samples is noise).
	sampledMinMeasured = 4
)

// MetricEstimate is one sampled metric with its 95% confidence interval:
// Mean ± HalfWidth, RelError = HalfWidth/|Mean|.
type MetricEstimate struct {
	Mean      float64
	HalfWidth float64
	RelError  float64
}

// SampledEstimates carries the statistical summary of a ClockSampled
// run (Result.Estimates).
type SampledEstimates struct {
	// Intervals is the number of measured intervals the estimates are
	// built from (fewer than sampledIntervals when the run early-stopped).
	Intervals int
	// EarlyStopped reports that every metric's confidence interval
	// converged below Config.MaxRelError before all intervals ran.
	EarlyStopped bool `json:",omitempty"`
	// WeightedIPC estimates Result.WeightedIPCSum (the slowdown metric:
	// normalized weighted speedup is a ratio of these sums).
	WeightedIPC MetricEstimate
	// ACTsPerKilo estimates demand+mitigative DRAM activations per
	// thousand retired instructions (the Rowhammer-pressure metric).
	ACTsPerKilo MetricEstimate
}

// tTable95 holds two-sided 95% critical values of Student's t for
// degrees of freedom 1..30; beyond that the normal approximation (1.960)
// is within half a percent.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCritical(df int) float64 {
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.960
}

// estimate builds the mean and 95% confidence interval of a sample set.
// A degenerate set (one sample, or a zero mean with nonzero spread) gets
// RelError = math.MaxFloat64 — "not converged" without producing an
// Inf/NaN that JSON could not carry into the result store.
func estimate(samples []float64) MetricEstimate {
	n := len(samples)
	var sum float64
	for _, x := range samples {
		sum += x
	}
	mean := sum / float64(n)
	e := MetricEstimate{Mean: mean}
	if n < 2 {
		e.RelError = math.MaxFloat64
		return e
	}
	var ss float64
	for _, x := range samples {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	e.HalfWidth = tCritical(n-1) * sd / math.Sqrt(float64(n))
	switch {
	case mean != 0:
		e.RelError = e.HalfWidth / math.Abs(mean)
	case e.HalfWidth != 0:
		e.RelError = math.MaxFloat64
	}
	return e
}

// runSampled is the ClockSampled top-level loop. The exact-mode Result
// fields are filled with extrapolations — per-core IPC means, measured
// memory stats scaled to the full run budget — so downstream consumers
// (normalization, tables) work unchanged, and Result.Estimates carries
// the confidence intervals.
func (s *simulator) runSampled() (Result, error) {
	if err := s.warmup(); err != nil {
		return Result{}, err
	}
	period := s.cfg.RunInstructions / sampledIntervals
	detail := period / sampledDetailDiv
	warm := detail / 4
	measured := detail - warm
	gap := period - detail

	var (
		wsumSamples  []float64
		actSamples   []float64
		ipcSums      = make([]float64, len(s.cores))
		ipcSqSums    = make([]float64, len(s.cores))
		retStart     = make([]int64, len(s.cores))
		cyc0Sum      float64
		instrTotal   int64
		memSum       memctrl.Stats
		hits, misses uint64
		early        bool
		intervals    int
	)
	for k := 0; k < sampledIntervals; k++ {
		if k > 0 {
			s.fastForward(gap)
		}
		if err := s.runBudget(warm); err != nil {
			return Result{}, err
		}
		memStart := s.mc.Stats()
		hitsStart, missStart := s.llc.Hits(), s.llc.Misses()
		cyc0Start := s.cores[0].Cycles()
		for i, c := range s.cores {
			retStart[i] = c.Retired()
			c.ResetStats()
		}
		if err := s.runBudget(measured); err != nil {
			return Result{}, err
		}
		var wsum float64
		for i, c := range s.cores {
			ipc := c.IPC()
			ipcSums[i] += ipc
			ipcSqSums[i] += ipc * ipc
			wsum += ipc
		}
		// The window ends when the slowest core reaches its budget; the
		// faster cores keep executing until then, so the memory deltas
		// cover more than cores*measured instructions. Normalizing by the
		// instructions actually retired in the window — not the nominal
		// budget — is what keeps the per-instruction rates unbiased (the
		// overshoot's requests are in the numerator either way).
		var windowInstr int64
		for i, c := range s.cores {
			windowInstr += c.Retired() - retStart[i]
		}
		instrTotal += windowInstr
		d := s.mc.Stats().Sub(memStart)
		memSum.Add(d)
		hits += s.llc.Hits() - hitsStart
		misses += s.llc.Misses() - missStart
		cyc0Sum += float64(s.cores[0].FinishCycle() - cyc0Start)
		wsumSamples = append(wsumSamples, wsum)
		actSamples = append(actSamples, float64(d.DemandACTs+d.MitigativeACTs)*1000/float64(windowInstr))
		intervals = k + 1
		if s.cfg.MaxRelError > 0 && intervals >= sampledMinMeasured {
			ipcEst, actEst := estimate(wsumSamples), estimate(actSamples)
			if ipcEst.RelError <= s.cfg.MaxRelError && actEst.RelError <= s.cfg.MaxRelError {
				early = intervals < sampledIntervals
				break
			}
		}
	}

	n := float64(intervals)
	res := Result{Workload: s.cfg.Workload.Name}
	for _, sum := range ipcSums {
		res.IPC = append(res.IPC, sum/n)
		res.WeightedIPCSum += sum / n
	}
	// Extrapolate the measured memory traffic to the exact-mode run it
	// estimates. The exact run ends when its slowest core retires the
	// full budget, with faster cores free-running until then, so it spans
	// about Run/min(ipc) cycles and Run*Σipc/min(ipc) retired
	// instructions — substantially more than Run*cores for heterogeneous
	// mixes. The per-core rates that ratio needs are full-run rates, and
	// window means are noisy stand-ins: a min over noisy means is biased
	// low, which inflates the ratio for near-homogeneous co-runs whose
	// cores merely trade transient stalls. Shrinking each core's mean
	// toward the grand mean — by the fraction of the between-core spread
	// its own sampling variance accounts for — keeps the structural
	// spread of a heterogeneous mix while discarding the transient spread
	// of a homogeneous one.
	cores := len(s.cores)
	grand := res.WeightedIPCSum / float64(cores)
	var varBetween float64
	for _, m := range res.IPC {
		varBetween += (m - grand) * (m - grand)
	}
	if cores > 1 {
		varBetween /= float64(cores - 1)
	}
	shrunkSum, shrunkMin := 0.0, math.MaxFloat64
	for i, m := range res.IPC {
		w := 0.0
		if varBetween > 0 && n > 1 {
			seSq := (ipcSqSums[i] - n*m*m) / (n - 1) / n
			if seSq < 0 {
				seSq = 0
			}
			if w = 1 - seSq/varBetween; w < 0 {
				w = 0
			}
		}
		sh := grand + (m-grand)*w
		shrunkSum += sh
		if sh < shrunkMin {
			shrunkMin = sh
		}
	}
	totalInstr := float64(s.cfg.RunInstructions) * float64(cores)
	if shrunkMin > 0 && !math.IsInf(shrunkSum, 0) {
		totalInstr = float64(s.cfg.RunInstructions) / shrunkMin * shrunkSum
		res.Cycles = int64(float64(s.cfg.RunInstructions)/shrunkMin + 0.5)
	} else {
		res.Cycles = int64(cyc0Sum/n*float64(s.cfg.RunInstructions)/float64(measured) + 0.5)
	}
	res.Mem = memSum.Scale(totalInstr / float64(instrTotal))
	if hits+misses > 0 {
		res.LLCHitRate = float64(hits) / float64(hits+misses)
	}
	res.Estimates = &SampledEstimates{
		Intervals:    intervals,
		EarlyStopped: early,
		WeightedIPC:  estimate(wsumSamples),
		ACTsPerKilo:  estimate(actSamples),
	}
	return res, nil
}

// runBudget grants every core the same additional instruction budget and
// steps the system until all of them reach it.
func (s *simulator) runBudget(budget int64) error {
	for _, c := range s.cores {
		c.SetBudget(budget)
	}
	guard := 100*budget + 100_000
	start := s.cores[0].Cycles()
	for {
		if s.cancelled() {
			return s.cancelErr()
		}
		done := true
		for _, c := range s.cores {
			if !c.Finished() {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		if s.cores[0].Cycles()-start > guard {
			panic(fmt.Sprintf("sim: %s exceeded sampled window cycle bound (deadlock?)", s.cfg.Workload.Name))
		}
		s.advance(0)
	}
}

// quiesce force-completes every in-flight memory operation so the cores
// can be functionally fast-forwarded: outstanding line fetches fill
// immediately (in line order, for determinism), queued LLC-hit
// completions fire, and pending writebacks plus queued demand requests
// are dropped — work the skipped gap never accounts for. DRAM bank
// timing, row-buffer, defense and tracker state are left as-is; the next
// detailed window's warm-up quarter absorbs the discontinuity.
func (s *simulator) quiesce() {
	lines := make([]uint64, 0, len(s.mshrs))
	for line := range s.mshrs {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		s.fill(s.mshrs[line])
	}
	for _, e := range s.hitQ {
		e.op.Complete()
	}
	s.hitQ = s.hitQ[:0]
	s.pendingWB = s.pendingWB[:0] // including evictions fill() just queued
	s.mc.DropQueued()
	s.mcBusy = true
	s.memVersion++
}

// fastForward advances every core n instructions in zero simulated time,
// warming the LLC with each skipped memory access (write-allocate, no
// writeback traffic) but touching nothing else.
func (s *simulator) fastForward(n int64) {
	s.quiesce()
	touch := func(addr uint64, write, uncached bool) {
		if uncached {
			return
		}
		if !s.llc.Access(addr, write) {
			s.llc.Fill(lineAddr(addr/trace.LineSize), write)
		}
	}
	for _, c := range s.cores {
		c.FunctionalAdvance(n, touch)
	}
}
