package sim

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"impress/internal/cache"
	"impress/internal/cpu"
	"impress/internal/dram"
	"impress/internal/errs"
	"impress/internal/memctrl"
)

// Checkpoint envelope: a 7-byte magic, one version byte, then a
// flate-compressed JSON body. The binary envelope keeps version skew
// detectable before any JSON parsing, and the compression keeps the
// dominant payload — the packed LLC line array — at on-disk size.
const (
	checkpointMagic   = "IMPCKPT"
	CheckpointVersion = 1

	// maxCheckpointBody caps the decompressed body so a corrupt or
	// hostile length field cannot balloon memory (the fuzz harness
	// exercises this).
	maxCheckpointBody = 128 << 20
)

// OpRef identifies an in-flight memory operation by its core and ROB
// position. Every operation the memory hierarchy still references (MSHR
// waiters, queued LLC-hit completions) is live in its core's ROB — an op
// leaves the ROB only once Done and retired — so the pair is a complete
// and stable address.
type OpRef struct {
	Core  int `json:"core"`
	Index int `json:"index"`
}

// MSHRSnapshot is one outstanding line fetch.
type MSHRSnapshot struct {
	Line     uint64  `json:"line"`
	Dirty    bool    `json:"dirty,omitempty"`
	Uncached bool    `json:"uncached,omitempty"`
	Waiters  []OpRef `json:"waiters,omitempty"`
}

// HitSnapshot is one queued LLC-hit completion.
type HitSnapshot struct {
	Ready dram.Tick `json:"ready"`
	Op    OpRef     `json:"op"`
}

// Checkpoint is the complete post-warmup state of a simulation: restore
// it into a freshly constructed simulator with the same config and the
// run continues bit-identically to one that simulated warmup itself.
// The leading config-identity fields are defense in depth: the result
// store already addresses checkpoints by the full spec, but a decoded
// checkpoint re-verifies compatibility (CompatibleWith) so a mismatched
// or hand-fed snapshot is a typed error, never silent corruption.
type Checkpoint struct {
	Workload   string       `json:"workload"`
	Cores      int          `json:"cores"`
	CPU        cpu.Config   `json:"cpu"`
	LLC        cache.Config `json:"llc"`
	LLCLatency int64        `json:"llcLatency"`
	DesignKind int          `json:"designKind"`
	Tracker    TrackerKind  `json:"tracker"`
	DesignTRH  float64      `json:"designTRH"`
	RFMTH      int          `json:"rfmth"`
	Warmup     int64        `json:"warmup"`
	Seed       uint64       `json:"seed"`

	Tick       int64     `json:"tick"`
	Rotate     int       `json:"rotate"`
	Now        dram.Tick `json:"now"`
	MemVersion uint64    `json:"memVersion"`

	CoreState []cpu.Snapshot             `json:"coreState"`
	LLCState  cache.Snapshot             `json:"llcState"`
	LLCLines  []byte                     `json:"llcLines"` // packed little-endian uint64 line words
	MC        memctrl.ControllerSnapshot `json:"mc"`
	MSHRs     []MSHRSnapshot             `json:"mshrs,omitempty"`
	HitQ      []HitSnapshot              `json:"hitQ,omitempty"`
	PendingWB []uint64                   `json:"pendingWB,omitempty"`
}

// CompatibleWith reports whether the checkpoint was captured by a run
// whose spec matches cfg up to the warmup boundary. CPU.NoFastPath is
// ignored: it is a clock-mode derivative, and the exact clock modes are
// bit-identical at the boundary, so one checkpoint serves all of them.
func (ck *Checkpoint) CompatibleWith(cfg Config) error {
	mismatch := func(what string, got, want any) error {
		return fmt.Errorf("sim: %w: checkpoint %s %v does not match config %v",
			errs.ErrBadSpec, what, got, want)
	}
	ckCPU, cfgCPU := ck.CPU, cfg.CPU
	ckCPU.NoFastPath, cfgCPU.NoFastPath = false, false
	switch {
	case ck.Workload != cfg.Workload.Name:
		return mismatch("workload", ck.Workload, cfg.Workload.Name)
	case ck.Cores != cfg.Cores:
		return mismatch("cores", ck.Cores, cfg.Cores)
	case ckCPU != cfgCPU:
		return mismatch("cpu config", ckCPU, cfgCPU)
	case ck.LLC != cfg.LLC:
		return mismatch("llc config", ck.LLC, cfg.LLC)
	case ck.LLCLatency != cfg.LLCLatency:
		return mismatch("llc latency", ck.LLCLatency, cfg.LLCLatency)
	case ck.DesignKind != int(cfg.Design.Kind):
		return mismatch("design", ck.DesignKind, int(cfg.Design.Kind))
	case ck.Tracker != cfg.Tracker:
		return mismatch("tracker", ck.Tracker, cfg.Tracker)
	case ck.DesignTRH != cfg.DesignTRH:
		return mismatch("design TRH", ck.DesignTRH, cfg.DesignTRH)
	case ck.RFMTH != cfg.RFMTH:
		return mismatch("rfmth", ck.RFMTH, cfg.RFMTH)
	case ck.Warmup != cfg.WarmupInstructions:
		return mismatch("warmup", ck.Warmup, cfg.WarmupInstructions)
	case ck.Seed != cfg.Seed:
		return mismatch("seed", ck.Seed, cfg.Seed)
	}
	return nil
}

// Encode serializes the checkpoint into the versioned envelope.
func (ck *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(checkpointMagic)
	buf.WriteByte(CheckpointVersion)
	zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if err := json.NewEncoder(zw).Encode(ck); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses an encoded checkpoint. Corrupt, truncated or
// version-skewed input is a typed error wrapping errs.ErrBadSpec; the
// decoder never panics (FuzzCheckpointDecode locks this). A successful
// decode guarantees structural sanity — counts consistent, packed line
// array well-formed — but not compatibility with any particular config;
// callers pair it with CompatibleWith.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(checkpointMagic)+1 || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("sim: %w: not a checkpoint (bad magic)", errs.ErrBadSpec)
	}
	if v := data[len(checkpointMagic)]; v != CheckpointVersion {
		return nil, fmt.Errorf("sim: %w: checkpoint version %d, want %d",
			errs.ErrBadSpec, v, CheckpointVersion)
	}
	zr := flate.NewReader(bytes.NewReader(data[len(checkpointMagic)+1:]))
	defer zr.Close()
	body, err := io.ReadAll(io.LimitReader(zr, maxCheckpointBody+1))
	if err != nil {
		return nil, fmt.Errorf("sim: %w: corrupt checkpoint body: %w", errs.ErrBadSpec, err)
	}
	if len(body) > maxCheckpointBody {
		return nil, fmt.Errorf("sim: %w: checkpoint body exceeds %d bytes", errs.ErrBadSpec, maxCheckpointBody)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(body, ck); err != nil {
		return nil, fmt.Errorf("sim: %w: corrupt checkpoint JSON: %w", errs.ErrBadSpec, err)
	}
	if ck.Cores <= 0 || len(ck.CoreState) != ck.Cores {
		return nil, fmt.Errorf("sim: %w: checkpoint has %d core states for %d cores",
			errs.ErrBadSpec, len(ck.CoreState), ck.Cores)
	}
	if len(ck.LLCLines)%8 != 0 {
		return nil, fmt.Errorf("sim: %w: packed LLC array length %d not a multiple of 8",
			errs.ErrBadSpec, len(ck.LLCLines))
	}
	if ck.Tick < 0 || ck.Tick%6 != 0 {
		return nil, fmt.Errorf("sim: %w: checkpoint tick %d not at a macro-cycle boundary",
			errs.ErrBadSpec, ck.Tick)
	}
	for _, m := range ck.MSHRs {
		for _, ref := range m.Waiters {
			if err := validateOpRef(ref, ck); err != nil {
				return nil, err
			}
		}
	}
	for _, h := range ck.HitQ {
		if err := validateOpRef(h.Op, ck); err != nil {
			return nil, err
		}
	}
	return ck, nil
}

func validateOpRef(ref OpRef, ck *Checkpoint) error {
	if ref.Core < 0 || ref.Core >= ck.Cores {
		return fmt.Errorf("sim: %w: op reference core %d out of range [0,%d)",
			errs.ErrBadSpec, ref.Core, ck.Cores)
	}
	if ref.Index < 0 || ref.Index >= len(ck.CoreState[ref.Core].ROB) {
		return fmt.Errorf("sim: %w: op reference index %d out of range [0,%d) on core %d",
			errs.ErrBadSpec, ref.Index, len(ck.CoreState[ref.Core].ROB), ref.Core)
	}
	return nil
}

// captureCheckpoint snapshots the simulator at the warmup boundary (a
// macro-cycle boundary with warmup retirement reached). It fails only
// when a component does not support snapshotting (an unsupported
// tracker), in which case the run simply proceeds without a checkpoint.
func (s *simulator) captureCheckpoint() (*Checkpoint, error) {
	mcSnap, err := s.mc.Snapshot()
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		Workload:   s.cfg.Workload.Name,
		Cores:      len(s.cores),
		CPU:        s.cfg.CPU,
		LLC:        s.cfg.LLC,
		LLCLatency: s.cfg.LLCLatency,
		DesignKind: int(s.cfg.Design.Kind),
		Tracker:    s.cfg.Tracker,
		DesignTRH:  s.cfg.DesignTRH,
		RFMTH:      s.cfg.RFMTH,
		Warmup:     s.cfg.WarmupInstructions,
		Seed:       s.cfg.Seed,
		Tick:       s.tick,
		Rotate:     s.rotate,
		Now:        s.now,
		MemVersion: s.memVersion,
		MC:         mcSnap,
	}
	for _, c := range s.cores {
		ck.CoreState = append(ck.CoreState, c.Snapshot())
	}
	llcSnap := s.llc.Snapshot()
	ck.LLCLines = packLines(llcSnap.Lines)
	llcSnap.Lines = nil
	ck.LLCState = llcSnap
	lines := make([]uint64, 0, len(s.mshrs))
	for line := range s.mshrs {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		m := s.mshrs[line]
		ms := MSHRSnapshot{Line: m.line, Dirty: m.dirty, Uncached: m.uncached}
		for _, op := range m.waiters {
			ref, err := s.opRef(op)
			if err != nil {
				return nil, err
			}
			ms.Waiters = append(ms.Waiters, ref)
		}
		ck.MSHRs = append(ck.MSHRs, ms)
	}
	for _, e := range s.hitQ {
		ref, err := s.opRef(e.op)
		if err != nil {
			return nil, err
		}
		ck.HitQ = append(ck.HitQ, HitSnapshot{Ready: e.ready, Op: ref})
	}
	for _, req := range s.pendingWB {
		ck.PendingWB = append(ck.PendingWB, req.Addr)
	}
	return ck, nil
}

// opRef locates op in its core's ROB (see OpRef for why it must be
// there).
func (s *simulator) opRef(op *cpu.MemOp) (OpRef, error) {
	c := op.Core()
	for i := 0; i < c.ROBLen(); i++ {
		if c.ROBOp(i) == op {
			return OpRef{Core: c.ID(), Index: i}, nil
		}
	}
	return OpRef{}, fmt.Errorf("sim: in-flight op (addr %#x) missing from core %d ROB", op.Addr, c.ID())
}

// restoreCheckpoint overwrites a freshly constructed simulator with a
// decoded, compatibility-checked checkpoint. Cached acceleration state
// (core stepping hints, the controller event horizon) is deliberately
// reset rather than restored: hints are invalidated at the warmup
// boundary on the straight-through path too (SetBudget), and mcBusy=true
// forces one real controller Tick whose no-op-ness the event-horizon
// contract guarantees, so neither can perturb the simulated outcome.
func (s *simulator) restoreCheckpoint(ck *Checkpoint) error {
	for i, c := range s.cores {
		if err := c.Restore(ck.CoreState[i]); err != nil {
			return err
		}
	}
	llcSnap := ck.LLCState
	llcSnap.Lines = unpackLines(ck.LLCLines)
	if err := s.llc.Restore(llcSnap); err != nil {
		return err
	}
	if err := s.mc.Restore(ck.MC); err != nil {
		return err
	}
	s.mshrs = make(map[uint64]*mshr, len(ck.MSHRs))
	for _, ms := range ck.MSHRs {
		if _, dup := s.mshrs[ms.Line]; dup {
			return fmt.Errorf("sim: %w: duplicate MSHR line %d in checkpoint", errs.ErrBadSpec, ms.Line)
		}
		m := &mshr{line: ms.Line, dirty: ms.Dirty, uncached: ms.Uncached}
		for _, ref := range ms.Waiters {
			m.waiters = append(m.waiters, s.cores[ref.Core].ROBOp(ref.Index))
		}
		s.mshrs[ms.Line] = m
	}
	s.hitQ = nil
	for _, h := range ck.HitQ {
		s.hitQ = append(s.hitQ, hitEntry{ready: h.Ready, op: s.cores[h.Op.Core].ROBOp(h.Op.Index)})
	}
	s.pendingWB = nil
	for _, addr := range ck.PendingWB {
		s.pendingWB = append(s.pendingWB, &memctrl.Request{
			Addr: addr, Write: true, Loc: s.mc.Map(addr),
		})
	}
	s.tick = ck.Tick
	s.rotate = ck.Rotate
	s.now = ck.Now
	s.memVersion = ck.MemVersion
	s.mcBusy = true
	return nil
}

// warmup brings the simulator to the post-warmup state: restoring a
// checkpoint when one is supplied, otherwise simulating the warmup
// instructions and offering the resulting state to OnCheckpoint.
func (s *simulator) warmup() error {
	if len(s.cfg.RestoreCheckpoint) > 0 {
		ck, err := DecodeCheckpoint(s.cfg.RestoreCheckpoint)
		if err != nil {
			return err
		}
		if err := ck.CompatibleWith(s.cfg); err != nil {
			return err
		}
		if err := s.restoreCheckpoint(ck); err != nil {
			return err
		}
		if s.shadow != nil {
			if err := s.shadow.restoreCheckpoint(ck); err != nil {
				return err
			}
		}
		return nil
	}
	if s.cfg.WarmupInstructions <= 0 {
		return nil
	}
	if err := s.runUntilRetired(s.cfg.WarmupInstructions); err != nil {
		return err
	}
	if s.cfg.OnCheckpoint != nil {
		if ck, err := s.captureCheckpoint(); err == nil {
			if data, err := ck.Encode(); err == nil {
				s.cfg.OnCheckpoint(data)
			}
		}
	}
	return nil
}

// packLines serializes the LLC line words little-endian; the flate layer
// of the envelope compresses the result.
func packLines(lines []uint64) []byte {
	out := make([]byte, 8*len(lines))
	for i, l := range lines {
		binary.LittleEndian.PutUint64(out[8*i:], l)
	}
	return out
}

func unpackLines(data []byte) []uint64 {
	out := make([]uint64, len(data)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return out
}
