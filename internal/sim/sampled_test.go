package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"testing"

	"impress/internal/core"
	"impress/internal/errs"
	"impress/internal/trace"
)

// sampledIPCBound and sampledACTBound are the documented accuracy of the
// sampled clock at QuickScale-like run lengths (DESIGN.md §12): the
// weighted-IPC estimate lands within 10% of the exact run, the ACT-rate
// estimate within 15% (ACTs are burstier — mitigations cluster — so the
// rate metric needs the looser bound). TestSampledErrorBounds enforces
// both; loosening them is an accuracy regression, not a test fix.
const (
	sampledIPCBound = 0.10
	sampledACTBound = 0.15
)

// sampledCases spans the benign workload behaviors that stress interval
// sampling differently: pointer-chasing (mcf), mixed compute (gcc),
// bandwidth streams (copy, add), and a heterogeneous co-run mix, with
// and without a defense in play. Adversarial (attack:) workloads are
// deliberately absent: Validate rejects them under ClockSampled, because
// the fast-forwarded gaps starve the tracker of the activation stream
// the attack exists to drive (see TestSampledRejectsAttackWorkloads).
var sampledCases = []struct {
	workload string
	kind     core.Kind
	tracker  TrackerKind
}{
	{"gcc", core.NoRP, TrackerNone},
	{"gcc", core.ImpressP, TrackerGraphene},
	{"mcf", core.ImpressP, TrackerGraphene},
	{"copy", core.ImpressN, TrackerGraphene},
	{"add", core.NoRP, TrackerNone},
	{"fotonik3d", core.ImpressP, TrackerGraphene},
	{"add_copy", core.ImpressP, TrackerGraphene},
	{"mix:mcf,gcc,copy,add", core.ImpressP, TrackerGraphene},
}

func sampledConfig(t *testing.T, workload string, kind core.Kind, tracker TrackerKind) Config {
	t.Helper()
	w, err := trace.WorkloadByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(w, core.NewDesign(kind), tracker)
	cfg.WarmupInstructions = 20_000
	cfg.RunInstructions = 100_000
	return cfg
}

// acts is the ACT metric the sampled clock estimates: demand plus
// mitigative activates.
func acts(res Result) float64 {
	return float64(res.Mem.DemandACTs + res.Mem.MitigativeACTs)
}

func relErr(est, exact float64) float64 {
	if exact == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-exact) / exact
}

// TestSampledErrorBounds validates the sampled clock against the exact
// reference: for every case, the sampled weighted-IPC and total-ACT
// estimates must land within the documented bounds of the exact run, and
// the run must report well-formed confidence intervals. The default run
// strides the case list (every other case) to keep tier-1 time bounded;
// IMPRESS_SAMPLED_VALIDATE=all runs the full universe — the CI
// sampled-validation job sets it.
func TestSampledErrorBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled validation skipped in -short mode")
	}
	stride := 2
	if os.Getenv("IMPRESS_SAMPLED_VALIDATE") == "all" {
		stride = 1
	}
	for i := 0; i < len(sampledCases); i += stride {
		tc := sampledCases[i]
		name := fmt.Sprintf("%s/%v/%s", tc.workload, tc.kind, tc.tracker)
		cfg := sampledConfig(t, tc.workload, tc.kind, tc.tracker)
		exact := Run(cfg)
		cfg.Clock = ClockSampled
		sampled := Run(cfg)

		est := sampled.Estimates
		if est == nil {
			t.Errorf("%s: sampled run reports no estimates", name)
			continue
		}
		if est.Intervals < sampledMinMeasured || est.Intervals > sampledIntervals {
			t.Errorf("%s: measured %d intervals, want %d..%d",
				name, est.Intervals, sampledMinMeasured, sampledIntervals)
		}
		if est.WeightedIPC.Mean <= 0 || est.WeightedIPC.HalfWidth < 0 {
			t.Errorf("%s: malformed IPC estimate %+v", name, est.WeightedIPC)
		}
		if e := relErr(sampled.WeightedIPCSum, exact.WeightedIPCSum); e > sampledIPCBound {
			t.Errorf("%s: sampled weighted IPC %.4f vs exact %.4f — rel. error %.2f%% exceeds the %.0f%% bound",
				name, sampled.WeightedIPCSum, exact.WeightedIPCSum, 100*e, 100*sampledIPCBound)
		}
		if e := relErr(acts(sampled), acts(exact)); e > sampledACTBound {
			t.Errorf("%s: sampled ACTs %.0f vs exact %.0f — rel. error %.2f%% exceeds the %.0f%% bound",
				name, acts(sampled), acts(exact), 100*e, 100*sampledACTBound)
		}
		t.Logf("%s: IPC err %.2f%% (CI ±%.2f%%), ACT err %.2f%% (CI ±%.2f%%), %d intervals",
			name,
			100*relErr(sampled.WeightedIPCSum, exact.WeightedIPCSum), 100*est.WeightedIPC.RelError,
			100*relErr(acts(sampled), acts(exact)), 100*est.ACTsPerKilo.RelError,
			est.Intervals)
	}
}

// TestSampledEarlyStop exercises the statistical stop: with a generous
// convergence target a steady workload must stop before exhausting its
// intervals (and never before the minimum), and the reported estimates
// must honor the target it stopped on.
func TestSampledEarlyStop(t *testing.T) {
	cfg := sampledConfig(t, "gcc", core.NoRP, TrackerNone)
	cfg.Clock = ClockSampled
	cfg.MaxRelError = 0.5
	res := Run(cfg)
	est := res.Estimates
	if est == nil {
		t.Fatal("sampled run reports no estimates")
	}
	if !est.EarlyStopped {
		t.Fatalf("gcc did not converge below a 50%% relative half-width in %d intervals: %+v",
			est.Intervals, est)
	}
	if est.Intervals < sampledMinMeasured || est.Intervals >= sampledIntervals {
		t.Fatalf("early stop after %d intervals, want %d..%d",
			est.Intervals, sampledMinMeasured, sampledIntervals-1)
	}
	if est.WeightedIPC.RelError > cfg.MaxRelError || est.ACTsPerKilo.RelError > cfg.MaxRelError {
		t.Fatalf("early stop with unconverged estimates: %+v", est)
	}
}

// TestSampledConfigValidation pins the sampled clock's input contract:
// a run budget too short to form intervals and a negative convergence
// target are typed ErrBadSpec errors.
func TestSampledConfigValidation(t *testing.T) {
	cfg := sampledConfig(t, "gcc", core.NoRP, TrackerNone)
	cfg.Clock = ClockSampled
	cfg.RunInstructions = sampledIntervals*sampledMinPeriod - 1
	if _, err := RunContext(context.Background(), cfg); !errors.Is(err, errs.ErrBadSpec) {
		t.Errorf("short sampled run: want ErrBadSpec, got %v", err)
	}
	cfg = sampledConfig(t, "gcc", core.NoRP, TrackerNone)
	cfg.Clock = ClockSampled
	cfg.MaxRelError = -0.1
	if _, err := RunContext(context.Background(), cfg); !errors.Is(err, errs.ErrBadSpec) {
		t.Errorf("negative MaxRelError: want ErrBadSpec, got %v", err)
	}
}

// TestSampledRejectsAttackWorkloads pins the adversarial exclusion: the
// fast-forwarded gaps generate no DRAM activations, so a sampled run
// would starve the tracker of the very stream an attack pattern exists
// to drive (mitigative ACTs come out ~5x low). Both bare attack
// workloads and mixes embedding one are typed ErrBadSpec errors under
// ClockSampled — and still valid under every exact mode.
func TestSampledRejectsAttackWorkloads(t *testing.T) {
	for _, name := range []string{"attack:hammer", "mix:mcf,gcc,copy,attack:hammer"} {
		cfg := sampledConfig(t, name, core.ImpressP, TrackerGraphene)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s must stay valid under the exact clocks: %v", name, err)
		}
		cfg.Clock = ClockSampled
		if _, err := RunContext(context.Background(), cfg); !errors.Is(err, errs.ErrBadSpec) {
			t.Errorf("%s under ClockSampled: want ErrBadSpec, got %v", name, err)
		}
	}
}
