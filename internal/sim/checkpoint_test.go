package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"impress/internal/core"
	"impress/internal/errs"
	"impress/internal/trace"
)

// checkpointCases covers every workload family the checkpoint must carry
// across the warmup boundary: SPEC singletons (pointer-chasing and
// streaming), per-core mix co-runs, and adversarial attack patterns —
// with randomized (PARA, MINT) and deterministic trackers, since the RNG
// chain is part of the restored state.
var checkpointCases = []struct {
	workload string
	kind     core.Kind
	tracker  TrackerKind
	trh      float64
}{
	{"gcc", core.ImpressP, TrackerGraphene, 4000},
	{"mcf", core.ExPress, TrackerPARA, 4000},
	{"copy", core.ImpressN, TrackerMINT, 1600},
	{"mix:mcf,gcc,copy,attack:hammer", core.ImpressP, TrackerGraphene, 4000},
	{"attack:hammer", core.ImpressP, TrackerMithril, 4000},
}

func checkpointConfig(t *testing.T, workload string, kind core.Kind, tracker TrackerKind, trh float64) Config {
	t.Helper()
	w, err := trace.WorkloadByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(w, core.NewDesign(kind), tracker)
	cfg.DesignTRH = trh
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 30_000
	return cfg
}

// capture runs cfg straight through, returning its result and the
// post-warmup checkpoint the run published.
func capture(t *testing.T, cfg Config) (Result, []byte) {
	t.Helper()
	var data []byte
	cfg.OnCheckpoint = func(b []byte) { data = b }
	res := Run(cfg)
	if data == nil {
		t.Fatalf("%s/%s: no checkpoint was captured", cfg.Workload.Name, cfg.Tracker)
	}
	return res, data
}

// TestCheckpointRestoreBitIdentical is the checkpoint contract: in every
// exact clock mode, a run restored from a post-warmup checkpoint
// produces a Result byte-identical to the straight-through run — and the
// capturing run itself is unperturbed by capturing. One checkpoint
// (captured under the default clock) serves all exact modes, because the
// modes are bit-identical at the warmup boundary.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	modes := []ClockMode{ClockEventDriven, ClockCycleAccurate, ClockLockstep}
	for _, tc := range checkpointCases {
		cfg := checkpointConfig(t, tc.workload, tc.kind, tc.tracker, tc.trh)
		straight := Run(cfg)
		captured, data := capture(t, cfg)
		if !reflect.DeepEqual(straight, captured) {
			t.Errorf("%s/%v/%s: capturing a checkpoint perturbed the run:\nplain    %+v\ncaptured %+v",
				tc.workload, tc.kind, tc.tracker, straight, captured)
			continue
		}
		for _, mode := range modes {
			mcfg := cfg
			mcfg.Clock = mode
			mcfg.RestoreCheckpoint = data
			restored := Run(mcfg)
			if !reflect.DeepEqual(straight, restored) {
				t.Errorf("%s/%v/%s clock=%d: restored run diverged from straight-through:\nstraight %+v\nrestored %+v",
					tc.workload, tc.kind, tc.tracker, mode, straight, restored)
			}
		}
	}
}

// TestCheckpointRoundTrip pins the codec: Encode then DecodeCheckpoint
// reproduces the checkpoint exactly, and the decoded copy passes the
// compatibility check against its own config.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := checkpointConfig(t, "gcc", core.ImpressP, TrackerGraphene, 4000)
	_, data := capture(t, cfg)
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.CompatibleWith(cfg); err != nil {
		t.Fatalf("decoded checkpoint rejects its own config: %v", err)
	}
	re, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := DecodeCheckpoint(re)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, ck2) {
		t.Fatal("checkpoint does not survive an encode/decode round trip")
	}
}

// TestCheckpointRestoreRejectsMismatch makes sure a checkpoint from a
// different spec prefix cannot silently seed a run: every mismatching
// knob that shapes warmup — seed, threshold, tracker, warmup length —
// fails RunContext with a typed ErrBadSpec error instead of restoring.
func TestCheckpointRestoreRejectsMismatch(t *testing.T) {
	base := checkpointConfig(t, "gcc", core.ImpressP, TrackerGraphene, 4000)
	_, data := capture(t, base)
	mutations := map[string]func(*Config){
		"seed":    func(c *Config) { c.Seed++ },
		"trh":     func(c *Config) { c.DesignTRH = 2000 },
		"tracker": func(c *Config) { c.Tracker = TrackerPARA },
		"warmup":  func(c *Config) { c.WarmupInstructions *= 2 },
		"design":  func(c *Config) { c.Design = core.NewDesign(core.ImpressN) },
		"corrupt": func(c *Config) { c.RestoreCheckpoint = []byte("IMPCKPT\x01 not flate") },
	}
	for name, mutate := range mutations {
		cfg := base
		cfg.RestoreCheckpoint = data
		mutate(&cfg)
		if _, err := RunContext(context.Background(), cfg); !errors.Is(err, errs.ErrBadSpec) {
			t.Errorf("%s mismatch: want an error wrapping ErrBadSpec, got %v", name, err)
		}
	}
}

// TestCheckpointClockModeSharing pins the one deliberate compatibility
// exception: the clock mode is a derivative of the run request, not of
// the warmed state (the exact modes are bit-identical at the boundary),
// so a checkpoint captured under one exact mode restores under another.
func TestCheckpointClockModeSharing(t *testing.T) {
	cfg := checkpointConfig(t, "gcc", core.NoRP, TrackerNone, 4000)
	cfg.Clock = ClockCycleAccurate
	_, data := capture(t, cfg)
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clock = ClockEventDriven
	if err := ck.CompatibleWith(cfg); err != nil {
		t.Fatalf("cycle-accurate checkpoint rejected by event-driven config: %v", err)
	}
}

// FuzzCheckpointDecode drives DecodeCheckpoint with corrupted inputs: it
// must never panic, and every rejection must be a typed error wrapping
// errs.ErrBadSpec (the contract untrusted store payloads rely on).
func FuzzCheckpointDecode(f *testing.F) {
	w, err := trace.WorkloadByName("gcc")
	if err != nil {
		f.Fatal(err)
	}
	cfg := DefaultConfig(w, core.NewDesign(core.ImpressP), TrackerGraphene)
	cfg.WarmupInstructions = 2_000
	cfg.RunInstructions = 2_000
	var valid []byte
	cfg.OnCheckpoint = func(b []byte) { valid = b }
	Run(cfg)
	if valid == nil {
		f.Fatal("no checkpoint was captured for the seed corpus")
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("IMPCKPT"))
	f.Add([]byte("IMPCKPT\x01"))
	f.Add([]byte("IMPCKPT\x02rest"))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte{}, valid...), 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, errs.ErrBadSpec) {
				t.Fatalf("decode error does not wrap ErrBadSpec: %v", err)
			}
			return
		}
		// A structurally valid checkpoint must also re-encode cleanly.
		if _, err := ck.Encode(); err != nil {
			t.Fatalf("decoded checkpoint fails to re-encode: %v", err)
		}
	})
}
