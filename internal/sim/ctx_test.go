package sim

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"impress/internal/core"
	"impress/internal/errs"
	"impress/internal/trace"
)

func tinyCtxConfig(t *testing.T, name string) Config {
	t.Helper()
	w, err := trace.WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(w, core.NewDesign(core.ImpressP), TrackerGraphene)
	cfg.WarmupInstructions = 5_000
	cfg.RunInstructions = 20_000
	return cfg
}

// TestRunContextMatchesRun pins the compatibility contract: RunContext
// under an uncancellable context is bit-identical to the deprecated Run.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := tinyCtxConfig(t, "gcc")
	got, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := Run(cfg); !resultsEqual(got, want) {
		t.Fatalf("RunContext diverged from Run:\n got %+v\nwant %+v", got, want)
	}
}

func resultsEqual(a, b Result) bool {
	if a.Workload != b.Workload || a.WeightedIPCSum != b.WeightedIPCSum ||
		a.Mem != b.Mem || a.LLCHitRate != b.LLCHitRate || a.Cycles != b.Cycles ||
		len(a.IPC) != len(b.IPC) {
		return false
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			return false
		}
	}
	return true
}

// TestRunContextPreCancelled is the macro-cycle boundary contract at its
// sharpest: a context cancelled before the run starts must return the
// typed error without simulating anything.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, tinyCtxConfig(t, "mcf"))
	if err == nil {
		t.Fatal("pre-cancelled run reported success")
	}
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("error %v does not match errs.ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match context.Canceled", err)
	}
	if res.Cycles != 0 || len(res.IPC) != 0 {
		t.Fatalf("cancelled run returned a non-zero result: %+v", res)
	}
}

// TestRunContextCancelMidRun cancels a long run from another goroutine
// and requires RunContext to return promptly — the poll sits at every
// macro-cycle boundary, so the observable latency from cancel to return
// is microseconds; the test allows a generous scheduler bound.
func TestRunContextCancelMidRun(t *testing.T) {
	cfg := tinyCtxConfig(t, "mcf")
	cfg.RunInstructions = 100_000_000 // far beyond what the test waits for
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		err      error
		returned time.Time
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := RunContext(ctx, cfg)
		done <- outcome{err, time.Now()}
	}()
	time.Sleep(50 * time.Millisecond) // let the simulator get going
	cancelled := time.Now()
	cancel()
	select {
	case out := <-done:
		if !errors.Is(out.err, errs.ErrCancelled) || !errors.Is(out.err, context.Canceled) {
			t.Fatalf("mid-run cancel returned %v", out.err)
		}
		if lag := out.returned.Sub(cancelled); lag > 2*time.Second {
			t.Fatalf("run returned %v after cancellation; the macro-cycle poll is not firing", lag)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run never returned")
	}
}

// TestRunContextCancelDuringWarmup covers the warmup loop's poll.
func TestRunContextCancelDuringWarmup(t *testing.T) {
	cfg := tinyCtxConfig(t, "mcf")
	cfg.WarmupInstructions = 100_000_000
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, cfg)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("warmup cancel returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled warmup never returned")
	}
}

// TestValidateTypedErrors pins the error taxonomy for every class of
// invalid caller input.
func TestValidateTypedErrors(t *testing.T) {
	base := tinyCtxConfig(t, "gcc")
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no workload", func(c *Config) { c.Workload = trace.Workload{} }},
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"unknown tracker", func(c *Config) { c.Tracker = "bogus" }},
		{"unknown clock", func(c *Config) { c.Clock = ClockMode(42) }},
		{"negative budget", func(c *Config) { c.RunInstructions = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, errs.ErrBadSpec) {
				t.Fatalf("Validate() = %v, want ErrBadSpec", err)
			}
			if _, err := RunContext(context.Background(), cfg); !errors.Is(err, errs.ErrBadSpec) {
				t.Fatalf("RunContext() = %v, want ErrBadSpec", err)
			}
		})
	}
}

// TestRunContextBadTraceFile: unreadable and corrupt trace files are
// typed input errors, not panics.
func TestRunContextBadTraceFile(t *testing.T) {
	cfg := Config{TraceFile: filepath.Join(t.TempDir(), "missing.trace")}
	if _, err := RunContext(context.Background(), cfg); !errors.Is(err, errs.ErrBadSpec) {
		t.Fatalf("missing trace file: %v, want ErrBadSpec", err)
	}
}

// TestRunStillPanicsOnBadInput pins the deprecated wrapper's behavior:
// pre-Lab call sites relied on the panic.
func TestRunStillPanicsOnBadInput(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Run with an invalid config did not panic")
		}
		if msg, ok := p.(string); !ok || !strings.Contains(msg, "sim:") {
			t.Fatalf("Run panicked with %v; want the sim error string", p)
		}
	}()
	Run(Config{Cores: 0})
}
