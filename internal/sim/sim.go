// Package sim wires the performance-simulation substrates together: 8
// trace-driven cores (internal/cpu), a shared SRRIP LLC with MSHR merging
// (internal/cache), and the DDR5 memory controller + DRAM model
// (internal/memctrl, internal/dram) with a Row-Press defense and Rowhammer
// tracker installed. It reproduces the paper's Section III methodology:
// 8-core rate mode, warmup then measured run, performance reported as
// normalized weighted speedup.
package sim

import (
	"context"
	"fmt"
	"math"
	"strings"

	"impress/internal/cache"
	"impress/internal/core"
	"impress/internal/cpu"
	"impress/internal/dram"
	"impress/internal/errs"
	"impress/internal/memctrl"
	"impress/internal/stats"
	"impress/internal/trace"
	"impress/internal/trackers"
)

// TrackerKind names a tracker configuration.
type TrackerKind string

// The tracker configurations of the paper's evaluation plus the
// extended zoo. Every kind except TrackerNone must name an entry in the
// trackers registry (trackers.ByName) — Validate and trackerFactory are
// registry-driven, so a tracker registered there is automatically
// simulatable (the zoo exhaustiveness test asserts it).
const (
	TrackerNone     TrackerKind = "none"
	TrackerGraphene TrackerKind = "graphene"
	TrackerPARA     TrackerKind = "para"
	TrackerMithril  TrackerKind = "mithril"
	TrackerMINT     TrackerKind = "mint"
	TrackerHydra    TrackerKind = "hydra"
	TrackerABACuS   TrackerKind = "abacus"
)

// ClockMode selects the stepping strategy of the top-level run loop.
type ClockMode int

const (
	// ClockEventDriven (the default) advances time directly to the next
	// event horizon when every component is provably idle: each layer
	// exposes a NextEvent(now) bound (dram bank/channel timing,
	// memctrl.Controller.NextEvent, cpu.Core.SkipHint, the simulator's
	// hit queue), and whole macro cycles whose every step would be a
	// no-op are applied wholesale. Results are bit-identical to
	// ClockCycleAccurate — the skip fires only when provably nothing can
	// change besides the clocks themselves.
	ClockEventDriven ClockMode = iota
	// ClockCycleAccurate ticks every CPU and DRAM cycle (the reference
	// semantics).
	ClockCycleAccurate
	// ClockLockstep is the debug mode: it runs an event-driven simulator
	// and a cycle-accurate shadow in tandem and panics on the first
	// macro cycle where their states diverge. ~2x the cost of
	// ClockCycleAccurate; use it to localize clocking bugs.
	ClockLockstep
	// ClockSampled is the explicitly approximate mode: SMARTS-style
	// interval sampling alternates short detailed windows (event-driven,
	// exact) with functionally fast-forwarded gaps in which only the LLC
	// is warmed and no time passes. Results are estimates with 95%
	// confidence intervals (Result.Estimates) and are NOT bit-identical
	// to the exact modes; the statistical validation tier
	// (TestSampledErrorBounds) quantifies the error. See DESIGN.md §12.
	ClockSampled
)

// Config describes one simulation run.
type Config struct {
	Workload trace.Workload
	// TraceFile, when non-empty, replaces Workload with the recorded
	// trace stored at this path (internal/trace binary format): the run
	// decodes the file, replays its per-core request streams, and sets
	// Cores to the trace's recorded core count and Seed to the trace's
	// recorded seed — the Seed override keeps randomized trackers
	// (PARA/MINT) on the same RNG chain as the live run, which the
	// replay-equivalence contract requires. An unreadable or corrupt
	// file is a typed error from RunContext (a panic from the deprecated
	// Run); callers wanting a different tracker seed over the same
	// recorded stream should load the trace themselves (trace.ReadFile +
	// Trace.Workload) and set Workload directly.
	TraceFile string
	Cores     int
	CPU       cpu.Config
	LLC       cache.Config
	// LLCLatency is the core-to-LLC round trip for hits, in CPU cycles.
	LLCLatency int64

	Design    core.Design
	Tracker   TrackerKind
	DesignTRH float64
	RFMTH     int

	WarmupInstructions int64
	RunInstructions    int64
	Seed               uint64

	// MaxCycles bounds the run as a safety net (0 = 100x run budget).
	MaxCycles int64

	// Clock selects the stepping strategy; the zero value is
	// ClockEventDriven, which is bit-identical to ClockCycleAccurate and
	// skips idle cycles.
	Clock ClockMode

	// MaxRelError, under ClockSampled, ends the measured run early once
	// every tracked metric's 95% confidence half-width falls below this
	// fraction of its mean (statistical early stop). Zero runs all
	// sampling intervals. Ignored by the exact clock modes.
	MaxRelError float64

	// RestoreCheckpoint, when non-nil, is an encoded warmup checkpoint
	// (EncodeCheckpoint) the run restores instead of simulating warmup.
	// The checkpoint must have been captured by a run with the same spec
	// up to the warmup boundary; restored runs are bit-identical to
	// straight-through runs in every exact clock mode. A checkpoint that
	// fails to decode or does not match the config is a typed error
	// wrapping errs.ErrBadSpec.
	RestoreCheckpoint []byte

	// OnCheckpoint, when non-nil, receives the encoded post-warmup
	// checkpoint of a straight-through run (it is not called when
	// RestoreCheckpoint is set or warmup is zero). Capture failures —
	// a tracker without snapshot support — skip the callback rather
	// than failing the run.
	OnCheckpoint func([]byte)
}

// Validate reports whether the config is a well-formed simulation
// request, returning a typed error (wrapping errs.ErrBadSpec) otherwise.
// It covers everything RunContext would reject — a missing workload or
// core count, an unknown tracker or clock mode, negative instruction
// budgets, an invalid defense design — except the trace file itself,
// whose decoding happens (and can fail) only when the run starts.
// Internal invariants are not its concern; those still panic.
func (cfg Config) Validate() error {
	if cfg.TraceFile == "" {
		if cfg.Workload.NewGenerator == nil {
			return fmt.Errorf("sim: %w: no workload (set Workload or TraceFile)", errs.ErrBadSpec)
		}
		if cfg.Cores <= 0 {
			return fmt.Errorf("sim: %w: need at least one core (got %d)", errs.ErrBadSpec, cfg.Cores)
		}
	}
	if cfg.Tracker != TrackerNone {
		if _, ok := trackers.ByName(string(cfg.Tracker)); !ok {
			return fmt.Errorf("sim: %w: unknown tracker %q (have none, %s)",
				errs.ErrBadSpec, cfg.Tracker, strings.Join(trackers.Names(), ", "))
		}
	}
	switch cfg.Clock {
	case ClockEventDriven, ClockCycleAccurate, ClockLockstep, ClockSampled:
	default:
		return fmt.Errorf("sim: %w: unknown clock mode %d", errs.ErrBadSpec, cfg.Clock)
	}
	if cfg.WarmupInstructions < 0 || cfg.RunInstructions < 0 {
		return fmt.Errorf("sim: %w: negative instruction budget (warmup %d, run %d)",
			errs.ErrBadSpec, cfg.WarmupInstructions, cfg.RunInstructions)
	}
	if cfg.MaxRelError < 0 {
		return fmt.Errorf("sim: %w: negative max relative error %v", errs.ErrBadSpec, cfg.MaxRelError)
	}
	if cfg.Clock == ClockSampled && cfg.RunInstructions < sampledIntervals*sampledMinPeriod {
		return fmt.Errorf("sim: %w: sampled clock needs at least %d run instructions (got %d)",
			errs.ErrBadSpec, sampledIntervals*sampledMinPeriod, cfg.RunInstructions)
	}
	if cfg.Clock == ClockSampled && strings.Contains(cfg.Workload.Name, "attack:") {
		// The fast-forwarded gaps generate no DRAM activations, so the
		// tracker and defense state an adversarial pattern exists to drive
		// sees a fifth of the hammering — mitigative ACT counts and the
		// attack core's slowdown come out wildly wrong, far outside the
		// documented sampling bounds. Adversarial runs need an exact clock.
		return fmt.Errorf("sim: %w: sampled clock cannot simulate adversarial workloads (%q): use an exact clock mode",
			errs.ErrBadSpec, cfg.Workload.Name)
	}
	if err := cfg.Design.Validate(); err != nil {
		return fmt.Errorf("sim: %w: %w", errs.ErrBadSpec, err)
	}
	return nil
}

// DefaultConfig returns the Table II system around the given workload and
// defense, with the reproduction's scaled-down default instruction counts
// (the paper uses 50 M warmup + 200 M run; relative results are stable at
// this scale because the generators are stationary — see DESIGN.md §4).
func DefaultConfig(w trace.Workload, design core.Design, tracker TrackerKind) Config {
	return Config{
		Workload:           w,
		Cores:              8,
		CPU:                cpu.DefaultConfig(),
		LLC:                cache.DefaultConfig(),
		LLCLatency:         44,
		Design:             design,
		Tracker:            tracker,
		DesignTRH:          4000,
		RFMTH:              80,
		WarmupInstructions: 200_000,
		RunInstructions:    1_000_000,
		Seed:               1,
	}
}

// Result summarizes one run.
type Result struct {
	Workload string
	IPC      []float64
	// WeightedIPCSum is the sum of per-core IPCs (rate mode with identical
	// copies, so normalized weighted speedup against a baseline run is
	// the ratio of these sums).
	WeightedIPCSum float64
	Mem            memctrl.Stats
	LLCHitRate     float64
	Cycles         int64

	// Estimates carries sampled-mode confidence intervals; nil in the
	// exact clock modes, so exact Result JSON (and the result-store
	// records and golden tables built from it) is byte-identical to
	// pre-sampling builds.
	Estimates *SampledEstimates `json:",omitempty"`
}

// Perf returns the run's aggregate performance metric.
func (r Result) Perf() float64 { return r.WeightedIPCSum }

// NormalizeTo returns this run's performance normalized to a baseline run
// of the same workload.
func (r Result) NormalizeTo(baseline Result) float64 {
	return stats.NormalizedWeightedSpeedup(r.IPC, baseline.IPC)
}

// Run executes the simulation. It panics on invalid input and cannot be
// cancelled; it is kept so pre-Lab call sites keep compiling and behaving
// bit-identically. New callers should use RunContext (or impress.Lab.Run),
// which returns typed errors and honors context cancellation.
//
// Run is safe for concurrent use: every call builds a private simulator —
// its own RNG chain seeded from cfg.Seed, trace generators, cores, LLC
// and memory controller — and the package keeps no mutable global state.
// Results depend only on cfg, never on what other goroutines are doing,
// which is what lets the experiment runner (internal/experiments) fan
// independent runs out over a worker pool while remaining bit-for-bit
// deterministic. The Config value itself must not be mutated while Run
// uses it; Design, Workload and cpu/cache configs are plain values, so
// sharing one Config template across goroutines by copy is fine.
func Run(cfg Config) Result {
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// RunContext executes the simulation under a context. Invalid caller
// input — a config failing Validate, an unreadable or corrupt trace
// file — returns a typed error wrapping errs.ErrBadSpec; internal
// invariant violations (lockstep divergence, the MaxCycles deadlock
// bound, a replay recording exhausted mid-run) still panic.
//
// Cancellation is honored at macro-cycle boundaries: the done channel is
// polled once per 6-tick macro cycle, before any component steps, so the
// run returns within one macro cycle of ctx ending — with an error
// matching both errs.ErrCancelled and ctx.Err() — while the hot loop
// pays only a nil-check when the context cannot be cancelled (the
// event-driven clock's idle skips fast-forward past the poll exactly as
// they fast-forward past the cycles themselves). RunContext has the same
// concurrency contract as Run.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if cfg.TraceFile != "" {
		// The streaming reader loads only the header and frame index here;
		// the replay generators pull frames from the file as the run
		// consumes them, so replay memory does not scale with trace size.
		r, err := trace.OpenReader(cfg.TraceFile)
		if err != nil {
			return Result{}, fmt.Errorf("sim: %w: %w", errs.ErrBadSpec, err)
		}
		defer r.Close()
		w, err := r.Workload()
		if err != nil {
			return Result{}, fmt.Errorf("sim: %w: %w", errs.ErrBadSpec, err)
		}
		cfg.Workload = w
		cfg.Cores = r.Header().Cores
		cfg.Seed = r.Header().Seed
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := newSimulator(cfg)
	s.done = ctx.Done()
	s.ctxErr = ctx.Err
	if cfg.Clock == ClockSampled {
		return s.runSampled()
	}
	return s.run()
}

// simulator holds the wired system.
type simulator struct {
	cfg Config
	mc  *memctrl.Controller
	llc *cache.Cache

	cores []*cpu.Core

	// mshrs merges outstanding line fetches.
	mshrs map[uint64]*mshr

	// hitQ is a FIFO of LLC-hit completions (fixed latency preserves
	// order).
	hitQ []hitEntry

	// pendingWB holds writebacks awaiting write-queue space (pre-mapped,
	// drained FIFO).
	pendingWB []*memctrl.Request

	now    dram.Tick
	tick   int64
	rotate int

	// memVersion implements cpu.MemorySystem.Version: it moves whenever
	// state that could flip a CanAccept verdict changes (queue pops,
	// line fills, MSHR allocation).
	memVersion uint64

	// mcBusy and mcHorizon cache the controller's event horizon: while
	// the controller reports inactive Ticks, DRAM cycles before
	// mcHorizon are provably no-ops and dramStep skips them. Any Push
	// sets mcBusy so the next DRAM cycle ticks for real.
	mcBusy    bool
	mcHorizon dram.Tick

	// shadow is the cycle-accurate twin driven in ClockLockstep mode.
	shadow *simulator

	// done and ctxErr carry the run's cancellation signal (RunContext).
	// done is nil for uncancellable contexts — context.Background() and
	// the deprecated Run path — so the per-macro-cycle poll degenerates
	// to one nil-check. The shadow simulator never carries them: it is
	// stepped by the primary, which polls for both.
	done   <-chan struct{}
	ctxErr func() error
}

type mshr struct {
	line  uint64
	dirty bool
	// uncached is set when the fetch was allocated by an LLC-bypassing
	// operation: the returning line is not filled into the LLC, and a
	// dirty one is written back to memory directly.
	uncached bool
	waiters  []*cpu.MemOp
}

type hitEntry struct {
	ready dram.Tick
	op    *cpu.MemOp
}

func newSimulator(cfg Config) *simulator {
	s := &simulator{
		cfg:   cfg,
		llc:   cache.New(cfg.LLC),
		mshrs: make(map[uint64]*mshr),
	}
	rng := stats.NewRand(cfg.Seed)
	factory := trackerFactory(cfg, rng)
	mcCfg := memctrl.DefaultConfig(cfg.Design, factory, cfg.RFMTH)
	mcCfg.OnReadComplete = s.readComplete
	s.mc = memctrl.New(mcCfg)
	coreCfg := cfg.CPU
	coreCfg.NoFastPath = cfg.Clock == ClockCycleAccurate
	for i := 0; i < cfg.Cores; i++ {
		gen := cfg.Workload.NewGenerator(i, cfg.Seed)
		s.cores = append(s.cores, cpu.New(i, coreCfg, gen, s))
	}
	s.mcBusy = true // force the first DRAM cycle to tick
	if cfg.Clock == ClockLockstep {
		shadowCfg := cfg
		shadowCfg.Clock = ClockCycleAccurate
		s.shadow = newSimulator(shadowCfg)
	}
	return s
}

// trackerFactory builds per-bank trackers tuned to the design's T*.
//
// The captured rng is owned by exactly one simulator: it is created in
// newSimulator per Run call and only ever advanced from that simulator's
// single goroutine (bank construction inside memctrl.New is sequential,
// and PARA/MINT draw from their own Split() streams afterwards). Nothing
// here may be shared across concurrent Run calls — stats.Rand is not
// goroutine-safe.
func trackerFactory(cfg Config, rng *stats.Rand) memctrl.TrackerFactory {
	if cfg.Tracker == TrackerNone {
		return nil
	}
	info, ok := trackers.ByName(string(cfg.Tracker))
	if !ok {
		panic(fmt.Sprintf("sim: unknown tracker %q", cfg.Tracker))
	}
	trh := cfg.Design.TrackerTRH(cfg.DesignTRH)
	return func(int) trackers.Tracker { return info.New(trh, cfg.RFMTH, rng) }
}

// Version implements cpu.MemorySystem: cores cache CanAccept-blocked
// stall verdicts and re-evaluate only when this moves.
func (s *simulator) Version() uint64 { return s.memVersion }

// CanAccept implements cpu.MemorySystem. Uncached operations may not
// rely on LLC residency (they bypass the cache), so they need an MSHR
// merge or read-queue space.
func (s *simulator) CanAccept(addr uint64, write, uncached bool) bool {
	line := addr / trace.LineSize
	if !uncached && s.llc.Contains(addr) {
		return true
	}
	if _, ok := s.mshrs[line]; ok {
		return true // merge
	}
	loc := s.mc.Map(lineAddr(line))
	return s.mc.CanPush(loc, false) // misses fetch the line (write-allocate)
}

// Access implements cpu.MemorySystem. Cores reach it through the
// interface, which the hotpath callee walk cannot follow — hence its
// own annotation.
//
//impress:hotpath
func (s *simulator) Access(op *cpu.MemOp) {
	if !op.Uncached && s.llc.Access(op.Addr, op.Write) {
		if op.Write {
			return // stores are posted; already Done
		}
		s.hitQ = append(s.hitQ, hitEntry{
			ready: s.now + dram.Tick(s.cfg.LLCLatency*dram.TicksPerCPUCycle),
			op:    op,
		})
		return
	}
	line := op.Addr / trace.LineSize
	if m, ok := s.mshrs[line]; ok {
		// Uncached operations may merge into an in-flight fetch of the
		// same line (cacheable or not); the allocator decides whether the
		// returning data fills the LLC.
		m.dirty = m.dirty || op.Write
		if !op.Write {
			m.waiters = append(m.waiters, op)
		}
		return
	}
	m := &mshr{line: line, dirty: op.Write, uncached: op.Uncached}
	if !op.Write {
		m.waiters = append(m.waiters, op)
	}
	s.mshrs[line] = m
	s.memVersion++ // a new MSHR can unblock merges
	addr := lineAddr(line)
	req := &memctrl.Request{Addr: addr, Loc: s.mc.Map(addr)}
	s.mc.Push(s.now, req)
	s.mcBusy = true
}

func lineAddr(line uint64) uint64 { return line * trace.LineSize }

// readComplete is the controller's read-completion callback: it resolves
// the finished request back to its MSHR by line address. A single
// method value installed once at construction replaces a per-miss
// closure, which would allocate on the hot path (DESIGN.md §10).
//
//impress:hotpath
func (s *simulator) readComplete(req *memctrl.Request, _ dram.Tick) {
	if m, ok := s.mshrs[req.Addr/trace.LineSize]; ok {
		s.fill(m)
	}
}

func (s *simulator) fill(m *mshr) {
	delete(s.mshrs, m.line)
	if m.uncached {
		// LLC bypass: no fill, no eviction. A dirty uncached line is
		// written straight back to memory (write-through after fetch).
		if m.dirty {
			s.pendingWB = append(s.pendingWB, &memctrl.Request{
				Addr: lineAddr(m.line), Write: true, Loc: s.mc.Map(lineAddr(m.line)),
			})
		}
	} else {
		victim, evicted := s.llc.Fill(lineAddr(m.line), m.dirty)
		if evicted && victim.Dirty {
			s.pendingWB = append(s.pendingWB, &memctrl.Request{
				Addr: victim.Addr, Write: true, Loc: s.mc.Map(victim.Addr),
			})
		}
	}
	s.memVersion++ // the fill (and freed MSHR) can unblock cores
	for _, op := range m.waiters {
		op.Complete()
	}
}

func (s *simulator) drainWritebacks() {
	n := 0
	for n < len(s.pendingWB) {
		req := s.pendingWB[n]
		if !s.mc.CanPush(req.Loc, true) {
			break // FIFO: head-of-line blocking keeps order and work bounded
		}
		s.mc.Push(s.now, req)
		s.mcBusy = true
		n++
	}
	if n > 0 {
		s.pendingWB = s.pendingWB[n:]
	}
}

func (s *simulator) cpuStep(t dram.Tick) {
	s.now = t
	// Complete LLC hits that are ready (FIFO order by construction).
	n := 0
	for n < len(s.hitQ) && s.hitQ[n].ready <= t {
		s.hitQ[n].op.Complete()
		n++
	}
	if n > 0 {
		s.hitQ = s.hitQ[n:]
	}
	// Rotate the stepping order so no core gets systematic first claim on
	// queue space (rate-mode fairness).
	start := s.rotate
	s.rotate++
	for i := range s.cores {
		s.cores[(start+i)%len(s.cores)].Step()
	}
}

func (s *simulator) dramStep(t dram.Tick) {
	s.now = t
	if len(s.pendingWB) > 0 {
		s.drainWritebacks()
	}
	if !s.eventClock() {
		// Reference mode: tick unconditionally and skip the horizon and
		// version bookkeeping — nothing reads either (cores run with
		// NoFastPath), and computing them would bill the cycle-accurate
		// baseline for event-clock machinery it does not use.
		s.mc.Tick(t)
		return
	}
	if !s.mcBusy && t < s.mcHorizon {
		return // provably a no-op DRAM cycle (Controller.NextEvent)
	}
	issuesBefore := s.mc.Issues()
	if s.mc.Tick(t) {
		s.mcBusy = true
	} else {
		s.mcBusy = false
		// Events strictly after t (this cycle just proved a no-op).
		s.mcHorizon = s.mc.NextEvent(t + 1)
	}
	if s.mc.Issues() != issuesBefore {
		s.memVersion++ // queue pops can unblock backpressured cores
	}
}

// eventClock reports whether idle skipping is enabled (everything except
// the cycle-accurate reference mode).
func (s *simulator) eventClock() bool { return s.cfg.Clock != ClockCycleAccurate }

// step advances one 6-tick macro cycle: 3 CPU cycles (4 GHz) and 2 DRAM
// cycles (2.66 GHz).
func (s *simulator) step() {
	base := dram.Tick(s.tick)
	s.cpuStep(base)
	s.dramStep(base)
	s.cpuStep(base + 2)
	s.dramStep(base + 3)
	s.cpuStep(base + 4)
	s.tick += 6
}

// advance performs one loop iteration: under the event-driven clock it
// first fast-forwards over as many whole macro cycles as are provably
// no-ops, then executes one macro cycle normally. retireTarget, when
// positive, is the caller's loop-exit retirement threshold: the skip
// stops before any core could reach it, so the caller observes the exact
// boundary cycle-accurate stepping would.
//
//impress:hotpath
func (s *simulator) advance(retireTarget int64) {
	var k int64
	if s.cfg.Clock != ClockCycleAccurate {
		if k = s.skippableMacroCycles(retireTarget); k > 0 {
			s.applySkip(k)
		}
	}
	s.step()
	if s.shadow != nil {
		for i := int64(0); i <= k; i++ {
			s.shadow.step()
		}
		s.assertLockstep(k)
	}
}

// skippableMacroCycles returns how many whole macro cycles can be
// fast-forwarded from the current macro boundary such that every skipped
// CPU step and DRAM tick is provably a no-op: every core is stalled or in
// a closed-form fetch/retire regime (cpu.SkipHint), no LLC-hit completion
// matures, no pending writeback can enter the controller, and the memory
// controller's NextEvent horizon is not reached. Zero means "step
// normally" and is always safe — the skip is an optimization gate, never
// a semantic one.
func (s *simulator) skippableMacroCycles(retireTarget int64) int64 {
	// Cheap rejections first: a busy controller must tick next cycle,
	// and a pushable writeback needs the next macro to run.
	if s.mcBusy {
		return 0
	}
	base := dram.Tick(s.tick)
	if len(s.pendingWB) > 0 && s.mc.CanPush(s.pendingWB[0].Loc, true) {
		return 0 // the next DRAM step drains a writeback
	}
	maxSteps := int64(math.MaxInt64) // bound in CPU steps
	width := int64(s.cfg.CPU.Width)
	for _, c := range s.cores {
		h := c.CurrentHint()
		if !h.Viable {
			return 0
		}
		if h.Steps < maxSteps {
			maxSteps = h.Steps
		}
		if retireTarget > 0 && h.RetirePerStep > 0 {
			if r := c.Retired(); r < retireTarget {
				// Stop strictly before the loop-exit predicate could
				// flip at a skipped macro boundary.
				toTarget := (retireTarget - r + width - 1) / width
				if toTarget-1 < maxSteps {
					maxSteps = toTarget - 1
				}
			}
		}
	}
	k := maxSteps / 3 // macro cycles: 3 CPU steps each
	if k <= 0 {
		return 0
	}
	// DRAM ticks run at base, base+3 (mod 6); none of the skipped ones
	// may reach the controller's cached event horizon.
	if km := (int64(s.mcHorizon-base) + 2) / 6; km < k {
		k = km
	}
	// LLC-hit completions maturing inside the window are absorbed by
	// applySkip — except for a core whose regime a completion could
	// change (see cpu.WakesOnCompletion): CPU steps run at base, base+2,
	// base+4 (mod 6), and no skipped step may reach that entry's ready
	// tick.
	for i := range s.hitQ {
		e := &s.hitQ[i]
		if e.ready > base+dram.Tick(6*k-2) {
			break // beyond the window (FIFO: later entries are too)
		}
		if e.op.Core().WakesOnCompletion() {
			if kh := (int64(e.ready-base) + 1) / 6; kh < k {
				k = kh
			}
			break
		}
	}
	if k < 0 {
		return 0
	}
	return k
}

// applySkip fast-forwards k whole macro cycles: cores advance 3k CPU
// cycles under their cached hints, and the stepping-order rotation
// advances as if cpuStep had run 3k times. Nothing else holds
// time-dependent state — the memory controller, DRAM banks, LLC, hit
// queue and writeback queue are all untouched because the horizon proved
// they would be.
func (s *simulator) applySkip(k int64) {
	steps := 3 * k
	for _, c := range s.cores {
		c.Skip(steps)
	}
	s.rotate += int(steps)
	// Absorb LLC-hit completions that matured inside the window: their
	// cores' regimes provably ignore them until a boundary at or after
	// the skip end (skippableMacroCycles stopped short of any that
	// would not), so completing them here is indistinguishable from
	// completing them at their exact CPU step.
	end := dram.Tick(s.tick) + dram.Tick(6*k-2)
	n := 0
	for n < len(s.hitQ) && s.hitQ[n].ready <= end {
		s.hitQ[n].op.Complete()
		n++
	}
	if n > 0 {
		s.hitQ = s.hitQ[n:]
	}
	s.tick += 6 * k
}

// assertLockstep compares the event-driven simulator against its
// cycle-accurate shadow after both advanced through the same macro
// cycles; any mismatch is a clocking bug, reported with enough state to
// localize it. It runs only under ClockLockstep, at most once per
// divergence, on a path that ends in a panic — diagnostic machinery,
// not simulation.
//
//impress:coldpath
func (s *simulator) assertLockstep(skipped int64) {
	fail := func(what string, ev, ca any) {
		panic(fmt.Sprintf(
			"sim: lockstep divergence after tick %d (skipped %d macro cycles): %s: event-driven %v vs cycle-accurate %v",
			s.tick, skipped, what, ev, ca))
	}
	sh := s.shadow
	if s.tick != sh.tick {
		fail("tick", s.tick, sh.tick)
	}
	for i, c := range s.cores {
		cs := sh.cores[i]
		if c.Cycles() != cs.Cycles() {
			fail(fmt.Sprintf("core %d cycles", i), c.Cycles(), cs.Cycles())
		}
		if c.Fetched() != cs.Fetched() {
			fail(fmt.Sprintf("core %d fetched", i), c.Fetched(), cs.Fetched())
		}
		if c.Retired() != cs.Retired() {
			fail(fmt.Sprintf("core %d retired", i), c.Retired(), cs.Retired())
		}
		if c.Outstanding() != cs.Outstanding() {
			fail(fmt.Sprintf("core %d outstanding", i), c.Outstanding(), cs.Outstanding())
		}
		if c.FinishCycle() != cs.FinishCycle() {
			fail(fmt.Sprintf("core %d finish cycle", i), c.FinishCycle(), cs.FinishCycle())
		}
	}
	if len(s.hitQ) != len(sh.hitQ) {
		fail("hit-queue length", len(s.hitQ), len(sh.hitQ))
	}
	if len(s.pendingWB) != len(sh.pendingWB) {
		fail("pending writebacks", len(s.pendingWB), len(sh.pendingWB))
	}
	if ev, ca := s.mc.Stats(), sh.mc.Stats(); ev != ca {
		fail("memory stats", fmt.Sprintf("%+v", ev), fmt.Sprintf("%+v", ca))
	}
	if s.llc.Hits() != sh.llc.Hits() || s.llc.Misses() != sh.llc.Misses() {
		fail("LLC hits/misses",
			fmt.Sprintf("%d/%d", s.llc.Hits(), s.llc.Misses()),
			fmt.Sprintf("%d/%d", sh.llc.Hits(), sh.llc.Misses()))
	}
}

// cancelled polls the run's context at a macro-cycle boundary. The
// fast path — no cancellable context — is a single nil-check, so the
// deprecated Run path and the cycle-accurate reference clock pay nothing
// measurable for cancellability.
func (s *simulator) cancelled() bool {
	if s.done == nil {
		return false
	}
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// cancelErr builds the typed cancellation error for the current run,
// matching both errs.ErrCancelled and the context's own error.
func (s *simulator) cancelErr() error {
	return fmt.Errorf("sim: %s stopped after %d cycles: %w",
		s.cfg.Workload.Name, s.tick/6, errs.Cancelled(s.ctxErr()))
}

func (s *simulator) runUntilRetired(target int64) error {
	for {
		if s.cancelled() {
			return s.cancelErr()
		}
		done := true
		for _, c := range s.cores {
			if c.Retired() < target {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		s.advance(target)
	}
}

func (s *simulator) run() (Result, error) {
	if err := s.warmup(); err != nil {
		return Result{}, err
	}
	memBase := s.mc.Stats()
	for _, c := range s.cores {
		c.ResetStats()
		c.SetBudget(s.cfg.RunInstructions)
	}
	if s.shadow != nil {
		for _, c := range s.shadow.cores {
			c.ResetStats()
			c.SetBudget(s.cfg.RunInstructions)
		}
	}
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 100 * s.cfg.RunInstructions
	}
	startCycle := s.cores[0].Cycles()
	for {
		if s.cancelled() {
			return Result{}, s.cancelErr()
		}
		done := true
		for _, c := range s.cores {
			if !c.Finished() {
				done = false
				break
			}
		}
		if done {
			break
		}
		if s.cores[0].Cycles()-startCycle > maxCycles {
			panic(fmt.Sprintf("sim: %s exceeded cycle bound (deadlock?)", s.cfg.Workload.Name))
		}
		s.advance(0)
	}

	res := Result{
		Workload: s.cfg.Workload.Name,
		Cycles:   s.cores[0].Cycles() - startCycle,
	}
	for _, c := range s.cores {
		ipc := c.IPC()
		res.IPC = append(res.IPC, ipc)
		res.WeightedIPCSum += ipc
	}
	res.Mem = s.mc.Stats().Sub(memBase)
	res.LLCHitRate = s.llc.HitRate()
	return res, nil
}
