// Package sim wires the performance-simulation substrates together: 8
// trace-driven cores (internal/cpu), a shared SRRIP LLC with MSHR merging
// (internal/cache), and the DDR5 memory controller + DRAM model
// (internal/memctrl, internal/dram) with a Row-Press defense and Rowhammer
// tracker installed. It reproduces the paper's Section III methodology:
// 8-core rate mode, warmup then measured run, performance reported as
// normalized weighted speedup.
package sim

import (
	"fmt"

	"impress/internal/cache"
	"impress/internal/core"
	"impress/internal/cpu"
	"impress/internal/dram"
	"impress/internal/memctrl"
	"impress/internal/stats"
	"impress/internal/trace"
	"impress/internal/trackers"
)

// TrackerKind names a tracker configuration.
type TrackerKind string

// The tracker configurations of the paper's evaluation.
const (
	TrackerNone     TrackerKind = "none"
	TrackerGraphene TrackerKind = "graphene"
	TrackerPARA     TrackerKind = "para"
	TrackerMithril  TrackerKind = "mithril"
	TrackerMINT     TrackerKind = "mint"
)

// Config describes one simulation run.
type Config struct {
	Workload trace.Workload
	Cores    int
	CPU      cpu.Config
	LLC      cache.Config
	// LLCLatency is the core-to-LLC round trip for hits, in CPU cycles.
	LLCLatency int64

	Design    core.Design
	Tracker   TrackerKind
	DesignTRH float64
	RFMTH     int

	WarmupInstructions int64
	RunInstructions    int64
	Seed               uint64

	// MaxCycles bounds the run as a safety net (0 = 100x run budget).
	MaxCycles int64
}

// DefaultConfig returns the Table II system around the given workload and
// defense, with the reproduction's scaled-down default instruction counts
// (the paper uses 50 M warmup + 200 M run; relative results are stable at
// this scale because the generators are stationary — see DESIGN.md §4).
func DefaultConfig(w trace.Workload, design core.Design, tracker TrackerKind) Config {
	return Config{
		Workload:           w,
		Cores:              8,
		CPU:                cpu.DefaultConfig(),
		LLC:                cache.DefaultConfig(),
		LLCLatency:         44,
		Design:             design,
		Tracker:            tracker,
		DesignTRH:          4000,
		RFMTH:              80,
		WarmupInstructions: 200_000,
		RunInstructions:    1_000_000,
		Seed:               1,
	}
}

// Result summarizes one run.
type Result struct {
	Workload string
	IPC      []float64
	// WeightedIPCSum is the sum of per-core IPCs (rate mode with identical
	// copies, so normalized weighted speedup against a baseline run is
	// the ratio of these sums).
	WeightedIPCSum float64
	Mem            memctrl.Stats
	LLCHitRate     float64
	Cycles         int64
}

// Perf returns the run's aggregate performance metric.
func (r Result) Perf() float64 { return r.WeightedIPCSum }

// NormalizeTo returns this run's performance normalized to a baseline run
// of the same workload.
func (r Result) NormalizeTo(baseline Result) float64 {
	return stats.NormalizedWeightedSpeedup(r.IPC, baseline.IPC)
}

// Run executes the simulation.
//
// Run is safe for concurrent use: every call builds a private simulator —
// its own RNG chain seeded from cfg.Seed, trace generators, cores, LLC
// and memory controller — and the package keeps no mutable global state.
// Results depend only on cfg, never on what other goroutines are doing,
// which is what lets the experiment runner (internal/experiments) fan
// independent runs out over a worker pool while remaining bit-for-bit
// deterministic. The Config value itself must not be mutated while Run
// uses it; Design, Workload and cpu/cache configs are plain values, so
// sharing one Config template across goroutines by copy is fine.
func Run(cfg Config) Result {
	if cfg.Cores <= 0 {
		panic("sim: need at least one core")
	}
	s := newSimulator(cfg)
	return s.run()
}

// simulator holds the wired system.
type simulator struct {
	cfg Config
	mc  *memctrl.Controller
	llc *cache.Cache

	cores []*cpu.Core

	// mshrs merges outstanding line fetches.
	mshrs map[uint64]*mshr

	// hitQ is a FIFO of LLC-hit completions (fixed latency preserves
	// order).
	hitQ []hitEntry

	// pendingWB holds writebacks awaiting write-queue space (pre-mapped,
	// drained FIFO).
	pendingWB []*memctrl.Request

	now    dram.Tick
	tick   int64
	rotate int
}

type mshr struct {
	line    uint64
	dirty   bool
	waiters []*cpu.MemOp
}

type hitEntry struct {
	ready dram.Tick
	op    *cpu.MemOp
}

func newSimulator(cfg Config) *simulator {
	s := &simulator{
		cfg:   cfg,
		llc:   cache.New(cfg.LLC),
		mshrs: make(map[uint64]*mshr),
	}
	rng := stats.NewRand(cfg.Seed)
	factory := trackerFactory(cfg, rng)
	s.mc = memctrl.New(memctrl.DefaultConfig(cfg.Design, factory, cfg.RFMTH))
	for i := 0; i < cfg.Cores; i++ {
		gen := cfg.Workload.NewGenerator(i, cfg.Seed)
		s.cores = append(s.cores, cpu.New(i, cfg.CPU, gen, s))
	}
	return s
}

// trackerFactory builds per-bank trackers tuned to the design's T*.
//
// The captured rng is owned by exactly one simulator: it is created in
// newSimulator per Run call and only ever advanced from that simulator's
// single goroutine (bank construction inside memctrl.New is sequential,
// and PARA/MINT draw from their own Split() streams afterwards). Nothing
// here may be shared across concurrent Run calls — stats.Rand is not
// goroutine-safe.
func trackerFactory(cfg Config, rng *stats.Rand) memctrl.TrackerFactory {
	if cfg.Tracker == TrackerNone {
		return nil
	}
	trh := cfg.Design.TrackerTRH(cfg.DesignTRH)
	switch cfg.Tracker {
	case TrackerGraphene:
		return func(int) trackers.Tracker { return trackers.NewGraphene(trh) }
	case TrackerPARA:
		return func(int) trackers.Tracker { return trackers.NewPARA(trh, rng.Split()) }
	case TrackerMithril:
		return func(int) trackers.Tracker { return trackers.NewMithril(trh, cfg.RFMTH) }
	case TrackerMINT:
		return func(int) trackers.Tracker { return trackers.NewMINT(cfg.RFMTH, rng.Split()) }
	default:
		panic(fmt.Sprintf("sim: unknown tracker %q", cfg.Tracker))
	}
}

// CanAccept implements cpu.MemorySystem.
func (s *simulator) CanAccept(addr uint64, write bool) bool {
	line := addr / trace.LineSize
	if s.llc.Contains(addr) {
		return true
	}
	if _, ok := s.mshrs[line]; ok {
		return true // merge
	}
	loc := s.mc.Map(lineAddr(line))
	return s.mc.CanPush(loc, false) // misses fetch the line (write-allocate)
}

// Access implements cpu.MemorySystem.
func (s *simulator) Access(op *cpu.MemOp) {
	if s.llc.Access(op.Addr, op.Write) {
		if op.Write {
			return // stores are posted; already Done
		}
		s.hitQ = append(s.hitQ, hitEntry{
			ready: s.now + dram.Tick(s.cfg.LLCLatency*dram.TicksPerCPUCycle),
			op:    op,
		})
		return
	}
	line := op.Addr / trace.LineSize
	if m, ok := s.mshrs[line]; ok {
		m.dirty = m.dirty || op.Write
		if !op.Write {
			m.waiters = append(m.waiters, op)
		}
		return
	}
	m := &mshr{line: line, dirty: op.Write}
	if !op.Write {
		m.waiters = append(m.waiters, op)
	}
	s.mshrs[line] = m
	addr := lineAddr(line)
	req := &memctrl.Request{
		Addr: addr,
		Loc:  s.mc.Map(addr),
		OnComplete: func(dram.Tick) {
			s.fill(m)
		},
	}
	s.mc.Push(s.now, req)
}

func lineAddr(line uint64) uint64 { return line * trace.LineSize }

func (s *simulator) fill(m *mshr) {
	delete(s.mshrs, m.line)
	victim, evicted := s.llc.Fill(lineAddr(m.line), m.dirty)
	if evicted && victim.Dirty {
		s.pendingWB = append(s.pendingWB, &memctrl.Request{
			Addr: victim.Addr, Write: true, Loc: s.mc.Map(victim.Addr),
		})
	}
	for _, op := range m.waiters {
		op.Complete()
	}
}

func (s *simulator) drainWritebacks() {
	n := 0
	for n < len(s.pendingWB) {
		req := s.pendingWB[n]
		if !s.mc.CanPush(req.Loc, true) {
			break // FIFO: head-of-line blocking keeps order and work bounded
		}
		s.mc.Push(s.now, req)
		n++
	}
	if n > 0 {
		s.pendingWB = s.pendingWB[n:]
	}
}

func (s *simulator) cpuStep(t dram.Tick) {
	s.now = t
	// Complete LLC hits that are ready (FIFO order by construction).
	n := 0
	for n < len(s.hitQ) && s.hitQ[n].ready <= t {
		s.hitQ[n].op.Complete()
		n++
	}
	if n > 0 {
		s.hitQ = s.hitQ[n:]
	}
	// Rotate the stepping order so no core gets systematic first claim on
	// queue space (rate-mode fairness).
	start := s.rotate
	s.rotate++
	for i := range s.cores {
		s.cores[(start+i)%len(s.cores)].Step()
	}
}

func (s *simulator) dramStep(t dram.Tick) {
	s.now = t
	s.drainWritebacks()
	s.mc.Tick(t)
}

// step advances one 6-tick macro cycle: 3 CPU cycles (4 GHz) and 2 DRAM
// cycles (2.66 GHz).
func (s *simulator) step() {
	base := dram.Tick(s.tick)
	s.cpuStep(base)
	s.dramStep(base)
	s.cpuStep(base + 2)
	s.dramStep(base + 3)
	s.cpuStep(base + 4)
	s.tick += 6
}

func (s *simulator) runUntilRetired(target int64) {
	for {
		done := true
		for _, c := range s.cores {
			if c.Retired() < target {
				done = false
				break
			}
		}
		if done {
			return
		}
		s.step()
	}
}

func (s *simulator) run() Result {
	// Warmup.
	if s.cfg.WarmupInstructions > 0 {
		s.runUntilRetired(s.cfg.WarmupInstructions)
	}
	memBase := s.mc.Stats()
	for _, c := range s.cores {
		c.ResetStats()
		c.SetBudget(s.cfg.RunInstructions)
	}
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 100 * s.cfg.RunInstructions
	}
	startCycle := s.cores[0].Cycles()
	for {
		done := true
		for _, c := range s.cores {
			if !c.Finished() {
				done = false
				break
			}
		}
		if done {
			break
		}
		if s.cores[0].Cycles()-startCycle > maxCycles {
			panic(fmt.Sprintf("sim: %s exceeded cycle bound (deadlock?)", s.cfg.Workload.Name))
		}
		s.step()
	}

	res := Result{
		Workload: s.cfg.Workload.Name,
		Cycles:   s.cores[0].Cycles() - startCycle,
	}
	for _, c := range s.cores {
		ipc := c.IPC()
		res.IPC = append(res.IPC, ipc)
		res.WeightedIPCSum += ipc
	}
	res.Mem = s.mc.Stats().Sub(memBase)
	res.LLCHitRate = s.llc.HitRate()
	return res
}
