package sim

import (
	"path/filepath"
	"reflect"
	"testing"

	"impress/internal/core"
	"impress/internal/trace"
)

// replayScale mirrors the experiment harness's QuickScale instruction
// budget (internal/experiments.QuickScale), the scale the replay
// acceptance criterion is stated at.
const (
	replayWarmup = 20_000
	replayRun    = 100_000
)

// replayRecordBudget is the per-core request budget recordings use: the
// most intensive workload (STREAM at 160 accesses/KI over 120k
// instructions) consumes ~19k requests per core, so 48k leaves a 2.5x
// margin for the post-budget overrun of rate mode.
const replayRecordBudget = 48_000

// replayWorkloads covers one workload per class: SPEC, STREAM, an
// arbitrary per-core mix with an attack-pattern aggressor (the co-run
// scenario the trace subsystem exists for), and a pure attack pattern.
var replayWorkloads = []string{
	"mcf",
	"copy",
	"mix:mcf,copy,attack:hammer",
	"attack:rowpress",
}

func replayConfig(w trace.Workload, clock ClockMode) Config {
	cfg := DefaultConfig(w, core.NewDesign(core.ImpressP), TrackerGraphene)
	cfg.WarmupInstructions = replayWarmup
	cfg.RunInstructions = replayRun
	cfg.Clock = clock
	return cfg
}

// TestRecordReplayBitIdentical is the tentpole's correctness property: a
// recorded-then-replayed run is bit-identical (same Result, same Stats)
// to the live-generator run, in both the event-driven and the
// cycle-accurate clock — which also makes replay a differential-testing
// axis for the event clock, so the live event-driven and cycle-accurate
// results are cross-checked here too.
func TestRecordReplayBitIdentical(t *testing.T) {
	for _, name := range replayWorkloads {
		w, err := trace.WorkloadByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rec := trace.Record(w, 8, replayRecordBudget, 1)
		replayW, err := rec.Workload()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var results [2]Result
		for i, clock := range []ClockMode{ClockEventDriven, ClockCycleAccurate} {
			live := Run(replayConfig(w, clock))
			replayed := Run(replayConfig(replayW, clock))
			if !reflect.DeepEqual(live, replayed) {
				t.Fatalf("%s (clock %d): replay diverged from live run:\nlive   %+v\nreplay %+v",
					name, clock, live, replayed)
			}
			results[i] = live
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Fatalf("%s: event-driven result diverged from cycle-accurate:\nEV %+v\nCA %+v",
				name, results[0], results[1])
		}
	}
}

// TestTraceFileConfig drives the same property through the Config.TraceFile
// path: a round trip through the on-disk binary format changes nothing.
func TestTraceFileConfig(t *testing.T) {
	w, err := trace.WorkloadByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.Record(w, 8, replayRecordBudget, 1)
	path := filepath.Join(t.TempDir(), "mcf.trace")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	live := Run(replayConfig(w, ClockEventDriven))
	cfg := replayConfig(trace.Workload{}, ClockEventDriven)
	cfg.TraceFile = path
	cfg.Cores = 0 // the trace's recorded core count takes over
	replayed := Run(cfg)
	if !reflect.DeepEqual(live, replayed) {
		t.Fatalf("TraceFile replay diverged from live run:\nlive   %+v\nreplay %+v", live, replayed)
	}
}

// TestTraceFileUsesRecordedSeed pins the seed half of the replay
// contract: the trace header's recorded seed must drive the replayed
// simulation's RNG chain (randomized trackers like PARA draw from it),
// even when the caller's Config carries a different seed.
func TestTraceFileUsesRecordedSeed(t *testing.T) {
	w, err := trace.WorkloadByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 2
	rec := trace.Record(w, 8, replayRecordBudget, seed)
	path := filepath.Join(t.TempDir(), "mcf-seed2.trace")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	liveCfg := replayConfig(w, ClockEventDriven)
	liveCfg.Tracker = TrackerPARA
	liveCfg.Seed = seed
	live := Run(liveCfg)

	replayCfg := replayConfig(trace.Workload{}, ClockEventDriven)
	replayCfg.Tracker = TrackerPARA
	replayCfg.TraceFile = path // leaves replayCfg.Seed at the default 1
	replayed := Run(replayCfg)
	if !reflect.DeepEqual(live, replayed) {
		t.Fatalf("replay ignored the recorded seed:\nlive   %+v\nreplay %+v", live, replayed)
	}
}

// TestAttackTrafficReachesDRAM verifies the uncached aggressor path end
// to end: an all-attacker run must bypass the LLC entirely (its accesses
// are neither hits nor misses) while forcing demand activations that are
// overwhelmingly row conflicts — the signature of a many-sided hammer
// pattern defeating the open-page policy.
func TestAttackTrafficReachesDRAM(t *testing.T) {
	w, err := trace.WorkloadByName("attack:manysided")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(replayConfig(w, ClockEventDriven))
	if res.Mem.DemandACTs < 3000 {
		t.Errorf("aggressor generated only %d demand ACTs; its traffic is not reaching DRAM", res.Mem.DemandACTs)
	}
	if 10*res.Mem.RowConflicts < 9*res.Mem.DemandACTs {
		t.Errorf("only %d of %d ACTs were row conflicts; pattern is not hammering",
			res.Mem.RowConflicts, res.Mem.DemandACTs)
	}
	if res.LLCHitRate != 0 {
		t.Errorf("uncached attack traffic touched the LLC (hit rate %v)", res.LLCHitRate)
	}
}

// TestMixedAttackScenarioRuns pins the acceptance criterion that a
// scenario inexpressible before this subsystem — two distinct workload
// classes plus an attack-pattern aggressor core in one run — executes,
// classifies correctly, and that the aggressor measurably degrades its
// victims relative to the same co-run with a benign core in its slot.
func TestMixedAttackScenarioRuns(t *testing.T) {
	attacked, err := trace.WorkloadByName("mix:mcf,mcf,mcf,gcc,gcc,gcc,copy,attack:manysided")
	if err != nil {
		t.Fatal(err)
	}
	benign, err := trace.WorkloadByName("mix:mcf,mcf,mcf,gcc,gcc,gcc,copy,xalancbmk")
	if err != nil {
		t.Fatal(err)
	}
	if attacked.Stream || benign.Stream {
		t.Fatal("mixes containing SPEC sources must classify as SPEC")
	}
	resA := Run(replayConfig(attacked, ClockEventDriven))
	resB := Run(replayConfig(benign, ClockEventDriven))
	if len(resA.IPC) != 8 {
		t.Fatalf("mixed run produced %d cores, want 8", len(resA.IPC))
	}
	victims := func(r Result) float64 {
		sum := 0.0
		for _, ipc := range r.IPC[:7] {
			sum += ipc
		}
		return sum
	}
	if va, vb := victims(resA), victims(resB); va >= vb {
		t.Errorf("victim cores not degraded by the aggressor: IPC sum %v (attacked) vs %v (benign)", va, vb)
	}
}

// TestTraceFileAllClockModes pins the streaming half of the replay
// contract in every clock mode: a file recorded with the streaming
// writer and replayed through Config.TraceFile — header + frame index
// at open, frames pulled from disk as the run consumes them — is
// bit-identical to the live-generator run under the event-driven,
// cycle-accurate and lockstep clocks alike.
func TestTraceFileAllClockModes(t *testing.T) {
	w, err := trace.WorkloadByName("mix:mcf,copy,attack:hammer")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mix.trace")
	if err := trace.RecordFile(t.Context(), w, 4, replayRecordBudget, 1, path); err != nil {
		t.Fatal(err)
	}
	for _, clock := range []ClockMode{ClockEventDriven, ClockCycleAccurate, ClockLockstep} {
		liveCfg := replayConfig(w, clock)
		liveCfg.Cores = 4
		live := Run(liveCfg)

		cfg := replayConfig(trace.Workload{}, clock)
		cfg.TraceFile = path
		cfg.Cores = 0 // the trace's recorded core count takes over
		replayed := Run(cfg)
		if !reflect.DeepEqual(live, replayed) {
			t.Fatalf("clock %d: streaming TraceFile replay diverged from live run:\nlive   %+v\nreplay %+v",
				clock, live, replayed)
		}
	}
}
