package sim

import (
	"reflect"
	"testing"

	"impress/internal/core"
	"impress/internal/dram"
	"impress/internal/trace"
)

// clockCases is a representative sweep over workload intensity, defense
// design and tracker kind for the clock-equivalence checks: every
// controller feature the event horizon must model (refresh drains,
// forced closures under tMRO, idle closures, ImPress-N window feeds,
// PARA's per-ACT randomness, MINT/Mithril RFM cadence, heavy mitigation
// traffic at a tiny threshold) appears at least once.
var clockCases = []struct {
	workload string
	kind     core.Kind
	tracker  TrackerKind
	trh      float64
}{
	{"gcc", core.NoRP, TrackerNone, 4000},
	{"copy", core.NoRP, TrackerNone, 4000},
	{"mcf", core.ImpressP, TrackerGraphene, 4000},
	{"copy", core.ImpressN, TrackerGraphene, 4000},
	{"gcc", core.ExPress, TrackerPARA, 4000},
	{"copy", core.ImpressP, TrackerMINT, 1600},
	{"add", core.ImpressP, TrackerMithril, 4000},
	{"xalancbmk", core.ImpressN, TrackerGraphene, 4000},
	{"mcf", core.ImpressP, TrackerGraphene, 100},
	{"mcf", core.ImpressP, TrackerHydra, 4000},
	{"copy", core.ImpressP, TrackerABACuS, 4000},
}

func clockConfig(t *testing.T, workload string, kind core.Kind, tracker TrackerKind, trh float64) Config {
	t.Helper()
	w, err := trace.WorkloadByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(w, core.NewDesign(kind), tracker)
	cfg.DesignTRH = trh
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 40_000
	return cfg
}

// TestClockEquivalence is the tentpole guarantee: the event-driven clock
// produces byte-identical Results to cycle-accurate stepping, and the
// lockstep debug mode (which cross-checks state every macro cycle) runs
// the same configurations to completion.
func TestClockEquivalence(t *testing.T) {
	for _, tc := range clockCases {
		cfg := clockConfig(t, tc.workload, tc.kind, tc.tracker, tc.trh)
		cfg.Clock = ClockCycleAccurate
		ca := Run(cfg)
		cfg.Clock = ClockEventDriven
		ev := Run(cfg)
		if !reflect.DeepEqual(ca, ev) {
			t.Errorf("%s/%v/%s: event-driven diverged from cycle-accurate:\nCA %+v\nEV %+v",
				tc.workload, tc.kind, tc.tracker, ca, ev)
			continue
		}
		cfg.Clock = ClockLockstep
		if ls := Run(cfg); !reflect.DeepEqual(ca, ls) {
			t.Errorf("%s/%v/%s: lockstep result differs from cycle-accurate",
				tc.workload, tc.kind, tc.tracker)
		}
	}
}

// TestSkipWindowsAreProvablyIdle validates the NextEvent/SkipHint
// contracts directly: it computes each skip decision, then steps through
// the window cycle-by-cycle instead of applying it, and fails if the
// memory controller changed state, a core deviated from its hinted
// fetch/retire rates, or a writeback drained — any of which would mean
// the horizon declared a window idle that was not.
func TestSkipWindowsAreProvablyIdle(t *testing.T) {
	if testing.Short() {
		t.Skip("skip-window audit skipped in -short mode")
	}
	for _, tc := range clockCases {
		cfg := clockConfig(t, tc.workload, tc.kind, tc.tracker, tc.trh)
		cfg.WarmupInstructions = 8_000
		cfg.RunInstructions = 20_000
		auditSkips(t, cfg)
	}
}

func auditSkips(t *testing.T, cfg Config) {
	t.Helper()
	s := newSimulator(cfg)
	name := cfg.Workload.Name + "/" + cfg.Design.Name() + "/" + string(cfg.Tracker)
	budgetSet := false
	for iter := 0; iter < 5_000_000; iter++ {
		if !budgetSet {
			done := true
			for _, c := range s.cores {
				if c.Retired() < cfg.WarmupInstructions {
					done = false
					break
				}
			}
			if done {
				for _, c := range s.cores {
					c.ResetStats()
					c.SetBudget(cfg.RunInstructions)
				}
				budgetSet = true
			}
		} else {
			done := true
			for _, c := range s.cores {
				if !c.Finished() {
					done = false
					break
				}
			}
			if done {
				return
			}
		}
		target := int64(0)
		if !budgetSet {
			target = cfg.WarmupInstructions
		}
		base := s.tick
		k := s.skippableMacroCycles(target)
		if k == 0 {
			s.step()
			continue
		}
		// Step through the window the skip would have jumped over and
		// verify nothing the skip ignores actually happens in it.
		before := s.mc.Stats()
		type coreState struct{ fetched, retired, cycles int64 }
		want := make([]coreState, len(s.cores))
		hints := make([]int64, 2*len(s.cores)) // fetch/retire rates
		for i, c := range s.cores {
			want[i] = coreState{c.Fetched(), c.Retired(), c.Cycles()}
			h := c.CurrentHint()
			hints[2*i], hints[2*i+1] = h.FetchPerStep, h.RetirePerStep
		}
		wbLen := len(s.pendingWB)
		for i := int64(0); i < k; i++ {
			s.step()
			if cur := s.mc.Stats(); cur != before {
				t.Fatalf("%s: base=%d k=%d: controller changed state at skipped macro %d:\nbefore %+v\nafter  %+v",
					name, base, k, i, before, cur)
			}
		}
		for i, c := range s.cores {
			ef := want[i].fetched + 3*k*hints[2*i]
			er := want[i].retired + 3*k*hints[2*i+1]
			ec := want[i].cycles + 3*k
			if c.Fetched() != ef || c.Retired() != er || c.Cycles() != ec {
				t.Fatalf("%s: base=%d k=%d: core %d deviated from hint (f/r per step %d/%d): fetched %d want %d, retired %d want %d, cycles %d want %d",
					name, base, k, i, hints[2*i], hints[2*i+1],
					c.Fetched(), ef, c.Retired(), er, c.Cycles(), ec)
			}
		}
		if len(s.pendingWB) != wbLen {
			t.Fatalf("%s: base=%d k=%d: writebacks drained inside a skip window (%d -> %d)",
				name, base, k, wbLen, len(s.pendingWB))
		}
	}
	t.Fatalf("%s: did not finish", name)
}

// fillStallGen warms one line with a posted write, then issues LLC-hit
// reads separated by long plain-instruction runs: the core ends up in
// the fill regime (fetching ahead of a head-stalled read) exactly when
// that head's hit completion matures, with the controller otherwise
// idle.
type fillStallGen struct{ n int }

func (g *fillStallGen) Name() string { return "fillstall" }

func (g *fillStallGen) Next() trace.Request {
	g.n++
	if g.n == 1 {
		return trace.Request{Addr: 64, Write: true, Gap: 0}
	}
	return trace.Request{Addr: 64, Gap: 3000}
}

// TestClockEquivalenceFillRegimeCompletion is the regression test for a
// skip-absorption bug: an LLC-hit completion that marks a fill-regime
// core's stalled ROB head Done must end the skip window (the core starts
// retiring that very cycle), not be absorbed into it. The Table II ROB
// (352 entries) lets the fill regime span 58 cycles — longer than the
// 44-cycle LLC hit latency — so with an otherwise idle memory system the
// completion matures inside the skip window; a smaller ROB would hide
// the bug behind the ROB-full stall.
func TestClockEquivalenceFillRegimeCompletion(t *testing.T) {
	w := trace.Workload{
		Name:         "fillstall",
		NewGenerator: func(int, uint64) trace.Generator { return &fillStallGen{} },
	}
	cfg := DefaultConfig(w, core.NewDesign(core.NoRP), TrackerNone)
	cfg.Cores = 1
	cfg.WarmupInstructions = 5_000
	cfg.RunInstructions = 30_000
	cfg.Clock = ClockCycleAccurate
	ca := Run(cfg)
	cfg.Clock = ClockEventDriven
	ev := Run(cfg)
	if !reflect.DeepEqual(ca, ev) {
		t.Fatalf("fill-regime completion diverged:\nCA %+v\nEV %+v", ca, ev)
	}
	cfg.Clock = ClockLockstep
	Run(cfg) // panics on the first divergent macro cycle
}

// TestLockstepCatchesDivergence makes sure the cross-check mode is not
// vacuous: a simulator whose clock is force-desynchronized from its
// shadow must panic.
func TestLockstepCatchesDivergence(t *testing.T) {
	cfg := clockConfig(t, "gcc", core.NoRP, TrackerNone, 4000)
	cfg.Clock = ClockLockstep
	s := newSimulator(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("lockstep did not detect a desynchronized shadow")
		}
	}()
	s.shadow.step() // desynchronize: shadow is one macro cycle ahead
	for i := 0; i < 10_000; i++ {
		s.advance(0)
	}
}

// TestEventClockSkips asserts the event-driven clock actually skips work
// on an idle-heavy configuration (guarding against silent regressions
// that would leave it bit-identical but cycle-by-cycle slow).
func TestEventClockSkips(t *testing.T) {
	cfg := clockConfig(t, "gcc", core.NoRP, TrackerNone, 4000)
	s := newSimulator(cfg)
	skipped := int64(0)
	for i := 0; i < 20_000; i++ {
		done := true
		for _, c := range s.cores {
			if c.Retired() < cfg.WarmupInstructions {
				done = false
				break
			}
		}
		if done {
			break
		}
		if k := s.skippableMacroCycles(cfg.WarmupInstructions); k > 0 {
			s.applySkip(k)
			skipped += k
		}
		s.step()
	}
	if skipped == 0 {
		t.Fatal("event-driven clock never skipped a macro cycle on gcc warmup")
	}
	// dram.TickMax is the documented "never" horizon; make sure an idle
	// controller reports a finite one (the refresh cadence bounds it).
	if h := s.mc.NextEvent(dram.Tick(s.tick)); h == dram.TickMax {
		t.Fatal("controller horizon must be bounded by the refresh cadence")
	}
}
