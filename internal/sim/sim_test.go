package sim

import (
	"testing"

	"impress/internal/core"
	"impress/internal/dram"
	"impress/internal/trace"
)

func quickConfig(name string, design core.Design, tracker TrackerKind) Config {
	w, err := trace.WorkloadByName(name)
	if err != nil {
		panic(err)
	}
	cfg := DefaultConfig(w, design, tracker)
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 40_000
	return cfg
}

func TestRunCompletes(t *testing.T) {
	res := Run(quickConfig("gcc", core.NewDesign(core.NoRP), TrackerNone))
	if len(res.IPC) != 8 {
		t.Fatalf("want 8 per-core IPCs, got %d", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > 6 {
			t.Fatalf("core %d IPC %v out of (0, 6]", i, ipc)
		}
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	if res.Mem.Reads == 0 || res.Mem.DemandACTs == 0 {
		t.Fatalf("no memory traffic recorded: %+v", res.Mem)
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(quickConfig("mcf", core.NewDesign(core.ImpressP), TrackerGraphene))
	b := Run(quickConfig("mcf", core.NewDesign(core.ImpressP), TrackerGraphene))
	if a.WeightedIPCSum != b.WeightedIPCSum || a.Mem != b.Mem {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a.Mem, b.Mem)
	}
}

func TestSeedChangesResult(t *testing.T) {
	cfgA := quickConfig("mcf", core.NewDesign(core.NoRP), TrackerPARA)
	cfgB := cfgA
	cfgB.Seed = 99
	a, b := Run(cfgA), Run(cfgB)
	if a.Mem == b.Mem {
		t.Fatal("different seeds should perturb PARA mitigations / traces")
	}
}

func TestStreamIsMemoryBound(t *testing.T) {
	gcc := Run(quickConfig("gcc", core.NewDesign(core.NoRP), TrackerNone))
	copyRes := Run(quickConfig("copy", core.NewDesign(core.NoRP), TrackerNone))
	if copyRes.WeightedIPCSum >= gcc.WeightedIPCSum {
		t.Fatalf("copy (%.2f) should be far more memory-bound than gcc (%.2f)",
			copyRes.WeightedIPCSum, gcc.WeightedIPCSum)
	}
	// Stream misses the LLC almost always.
	if copyRes.LLCHitRate > 0.2 {
		t.Fatalf("copy LLC hit rate %v, expected streaming (<0.2)", copyRes.LLCHitRate)
	}
}

func TestTMROReducesRowHitsOnStream(t *testing.T) {
	base := Run(quickConfig("copy", core.NewDesign(core.NoRP), TrackerNone))
	lim := Run(quickConfig("copy",
		core.NewDesign(core.ExPress).WithTMRO(dram.Ns(36)), TrackerNone))
	rb := func(r Result) float64 {
		return float64(r.Mem.RowHits) / float64(r.Mem.RowHits+r.Mem.RowMisses)
	}
	if rb(lim) >= rb(base) {
		t.Fatalf("tMRO=36ns must cut row-buffer hits: %v vs %v", rb(lim), rb(base))
	}
	if lim.Mem.ForcedClosures == 0 {
		t.Fatal("tMRO produced no forced closures")
	}
}

func TestImpressPMatchesNoRPPerformance(t *testing.T) {
	// The headline perf claim: ImPress-P ~ No-RP on benign workloads.
	for _, name := range []string{"gcc", "copy"} {
		base := Run(quickConfig(name, core.NewDesign(core.NoRP), TrackerGraphene))
		p := Run(quickConfig(name, core.NewDesign(core.ImpressP), TrackerGraphene))
		rel := p.NormalizeTo(base)
		if rel < 0.95 || rel > 1.05 {
			t.Fatalf("%s: ImPress-P perf %.3f vs No-RP; want ~1.0", name, rel)
		}
	}
}

func TestMitigationsOccurUnderGraphene(t *testing.T) {
	// A streaming workload revisits each 8 KB row once per column group
	// (16 ACTs per row per pass under MOP-8); a very low threshold must
	// therefore trip Graphene mitigations.
	cfg := quickConfig("copy", core.NewDesign(core.NoRP), TrackerGraphene)
	cfg.DesignTRH = 30 // internal threshold 10 < 16 ACTs per row pass
	res := Run(cfg)
	if res.Mem.Mitigations == 0 {
		t.Fatalf("no mitigations at TRH=30 under copy: %+v", res.Mem)
	}
	if res.Mem.MitigativeACTs == 0 {
		t.Fatal("mitigations without mitigative ACTs")
	}
}

func TestMINTRunsWithRFM(t *testing.T) {
	cfg := quickConfig("copy", core.NewDesign(core.ImpressP), TrackerMINT)
	cfg.DesignTRH = 1600
	res := Run(cfg)
	if res.Mem.RFMs == 0 {
		t.Fatalf("in-DRAM tracker got no RFMs: %+v", res.Mem)
	}
}

func TestNormalizeToSelfIsOne(t *testing.T) {
	res := Run(quickConfig("gcc", core.NewDesign(core.NoRP), TrackerNone))
	if v := res.NormalizeTo(res); v != 1 {
		t.Fatalf("self-normalization = %v", v)
	}
}

func TestAllTrackersRun(t *testing.T) {
	for _, tr := range []TrackerKind{TrackerGraphene, TrackerPARA, TrackerMithril, TrackerMINT} {
		cfg := quickConfig("gcc", core.NewDesign(core.ImpressP), tr)
		if tr == TrackerMINT {
			cfg.DesignTRH = 1600
		}
		res := Run(cfg)
		if res.WeightedIPCSum <= 0 {
			t.Fatalf("%s: no progress", tr)
		}
	}
}

// TestConcurrentRunsAreIsolated runs the same seeded config from several
// goroutines alongside a serial reference and checks every result is
// identical: Run must not share RNG streams, generators or any other
// mutable state across calls (the contract the parallel experiment runner
// in internal/experiments depends on). Meaningful under -race.
func TestConcurrentRunsAreIsolated(t *testing.T) {
	cfg := quickConfig("gcc", core.NewDesign(core.ImpressP), TrackerPARA)
	want := Run(cfg)
	const goroutines = 4
	results := make([]Result, goroutines)
	done := make(chan int, goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			results[i] = Run(cfg)
			done <- i
		}()
	}
	for i := 0; i < goroutines; i++ {
		<-done
	}
	for i, got := range results {
		if got.Cycles != want.Cycles || got.WeightedIPCSum != want.WeightedIPCSum ||
			got.Mem != want.Mem {
			t.Fatalf("concurrent run %d diverged from serial reference:\n got %+v\nwant %+v", i, got, want)
		}
	}
}
