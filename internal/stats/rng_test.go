package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %d != %d", i, av, bv)
		}
	}
}

func TestNewRandSeedsDiffer(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(7)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRand(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRand(17)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRand(19)
	const n = 100000
	const p = 0.125
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli rate %v too far from %v", rate, p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(29)
	const n = 200000
	const mean = 7.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(mean)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("exponential mean %v too far from %v", got, mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(31)
	child := r.Split()
	// The child stream must not simply replay the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d/100 times", same)
	}
}

func TestUint64nDistribution(t *testing.T) {
	r := NewRand(37)
	const n = 5
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.2) > 0.01 {
			t.Fatalf("bucket %d frequency %v too far from 0.2", i, frac)
		}
	}
}
