package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CounterSet is a named bag of monotonically increasing event counters used
// throughout the simulator (activations, row hits, mitigations, ...). The
// zero value is ready to use.
type CounterSet struct {
	counts map[string]uint64
}

// Add increments counter name by delta.
func (c *CounterSet) Add(name string, delta uint64) {
	if c.counts == nil {
		c.counts = make(map[string]uint64)
	}
	c.counts[name] += delta
}

// Inc increments counter name by one.
func (c *CounterSet) Inc(name string) { c.Add(name, 1) }

// Get returns the current value of counter name (zero if never touched).
func (c *CounterSet) Get(name string) uint64 {
	return c.counts[name]
}

// Names returns the sorted list of counters that have been touched.
func (c *CounterSet) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds every counter from other into c, in sorted name order so
// the first-touch ordering of c's underlying map never depends on
// other's iteration order.
func (c *CounterSet) Merge(other *CounterSet) {
	for _, n := range other.Names() {
		c.Add(n, other.counts[n])
	}
}

// Reset clears all counters.
func (c *CounterSet) Reset() { c.counts = nil }

// String renders the counters as "name=value" pairs in sorted order.
func (c *CounterSet) String() string {
	var b strings.Builder
	for i, n := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.counts[n])
	}
	return b.String()
}

// Histogram is a fixed-bucket histogram over non-negative integer samples,
// used for row-open-time and queueing-delay distributions.
type Histogram struct {
	// BucketWidth is the width of each bucket in sample units.
	BucketWidth uint64
	buckets     []uint64
	overflow    uint64
	count       uint64
	sum         uint64
	max         uint64
}

// NewHistogram creates a histogram with n buckets of the given width;
// samples >= n*width land in a single overflow bucket.
func NewHistogram(bucketWidth uint64, n int) *Histogram {
	if bucketWidth == 0 || n <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{BucketWidth: bucketWidth, buckets: make([]uint64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(sample uint64) {
	h.count++
	h.sum += sample
	if sample > h.max {
		h.max = sample
	}
	idx := sample / h.BucketWidth
	if idx >= uint64(len(h.buckets)) {
		h.overflow++
		return
	}
	h.buckets[idx]++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// MaxSample returns the largest sample observed (zero if none).
func (h *Histogram) MaxSample() uint64 { return h.max }

// MeanSample returns the arithmetic mean of samples (zero if none).
func (h *Histogram) MeanSample() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Overflow returns the number of samples beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// NumBuckets returns the number of regular buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }
