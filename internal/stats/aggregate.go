package stats

import (
	"fmt"
	"math"
	"sort"
)

// GeoMean returns the geometric mean of xs. It panics if any value is
// non-positive (the paper's performance numbers are always positive ratios)
// and returns NaN for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest value in xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WeightedSpeedup computes the weighted speedup of a multi-programmed run:
// the sum over cores of IPC_shared[i] / IPC_reference[i]. The paper reports
// performance as weighted speedup normalized to a baseline configuration;
// NormalizedWeightedSpeedup performs that normalization directly.
func WeightedSpeedup(ipcShared, ipcReference []float64) float64 {
	if len(ipcShared) != len(ipcReference) {
		panic("stats: WeightedSpeedup length mismatch")
	}
	ws := 0.0
	for i := range ipcShared {
		if ipcReference[i] <= 0 {
			panic("stats: non-positive reference IPC")
		}
		ws += ipcShared[i] / ipcReference[i]
	}
	return ws
}

// NormalizedWeightedSpeedup returns WS(config)/WS(baseline) where both runs
// use the same per-core reference IPCs. When the reference IPCs are the
// baseline run itself (rate mode with identical copies), this reduces to the
// ratio of summed IPCs, which is how the experiment harness uses it.
func NormalizedWeightedSpeedup(ipcConfig, ipcBaseline []float64) float64 {
	if len(ipcConfig) != len(ipcBaseline) {
		panic("stats: NormalizedWeightedSpeedup length mismatch")
	}
	num, den := 0.0, 0.0
	for i := range ipcConfig {
		if ipcBaseline[i] <= 0 {
			panic("stats: non-positive baseline IPC")
		}
		num += ipcConfig[i] / ipcBaseline[i]
	}
	den = float64(len(ipcBaseline))
	return num / den
}

// Ratio is a convenience for x/y that panics on y==0 with a clear message.
func Ratio(x, y float64) float64 {
	if y == 0 {
		panic("stats: division by zero ratio")
	}
	return x / y
}
