// Package stats provides deterministic pseudo-random number generation,
// aggregate statistics (geometric means, weighted speedup) and histogram
// utilities shared by the simulator, the trackers and the experiment
// harness.
//
// Every source of randomness in the repository (PARA's mitigation coin,
// MINT's slot selection, the synthetic trace generators, the Monte-Carlo
// security analysis) draws from a seeded xoshiro256** generator so that
// every experiment is reproducible bit-for-bit.
package stats

import (
	"math"
	"math/bits"
)

// Rand is a small, fast, deterministic PRNG (xoshiro256**).
//
// The zero value is not usable; construct with NewRand. Rand is not safe
// for concurrent use; give each goroutine its own generator (see Split).
// The parallel experiment runner relies on this discipline: every
// sim.Run call constructs its own Rand from Config.Seed, so concurrent
// simulations never contend on (or perturb) each other's streams, which
// keeps parallel execution bit-for-bit identical to serial execution.
type Rand struct {
	s [4]uint64
}

// splitMix64 is used to seed the xoshiro state from a single 64-bit seed,
// as recommended by the xoshiro authors.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x2545f4914f6cdd1d
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// State returns the generator's internal state so it can be serialized
// (warmup checkpoints) and later restored with SetState.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with a value
// previously obtained from State. The restored generator produces the
// exact same stream the original would have from that point on.
func (r *Rand) SetState(s [4]uint64) { r.s = s }

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output because it is seeded through
// splitMix64. Split advances r by one draw.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Exponential returns an exponentially distributed value with the given
// mean, via inverse-CDF sampling. Used by trace generators for inter-request
// gaps.
func (r *Rand) Exponential(mean float64) float64 {
	// -mean * ln(U), guarding U=0.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}
