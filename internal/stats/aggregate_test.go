package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGeoMeanBasics(t *testing.T) {
	if got := GeoMean([]float64{4, 9}); !almostEqual(got, 6, 1e-12) {
		t.Fatalf("GeoMean(4,9) = %v, want 6", got)
	}
	if got := GeoMean([]float64{5}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("GeoMean(5) = %v, want 5", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("GeoMean(nil) should be NaN")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

// Property: the geometric mean lies between min and max, and scaling all
// inputs by c scales the mean by c.
func TestGeoMeanProperties(t *testing.T) {
	r := NewRand(1)
	f := func(n uint8) bool {
		k := int(n%10) + 1
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = 0.1 + 10*r.Float64()
		}
		g := GeoMean(xs)
		if g < Min(xs)-1e-9 || g > Max(xs)+1e-9 {
			return false
		}
		const c = 3.5
		scaled := make([]float64, k)
		for i := range xs {
			scaled[i] = c * xs[i]
		}
		return almostEqual(GeoMean(scaled), c*g, 1e-9*c*g+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Mean(xs); !almostEqual(got, 2.75, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty-slice aggregates should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Must not modify input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if !almostEqual(ws, 1.5, 1e-12) {
		t.Fatalf("WeightedSpeedup = %v, want 1.5", ws)
	}
}

func TestNormalizedWeightedSpeedupIdentity(t *testing.T) {
	ipc := []float64{1.1, 0.4, 2.2, 0.9}
	if got := NormalizedWeightedSpeedup(ipc, ipc); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("self-normalized speedup = %v, want 1", got)
	}
}

func TestNormalizedWeightedSpeedupHalf(t *testing.T) {
	base := []float64{2, 2}
	cfg := []float64{1, 1}
	if got := NormalizedWeightedSpeedup(cfg, base); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("got %v, want 0.5", got)
	}
}

func TestCounterSet(t *testing.T) {
	var c CounterSet
	c.Inc("acts")
	c.Add("acts", 4)
	c.Add("hits", 2)
	if c.Get("acts") != 5 || c.Get("hits") != 2 || c.Get("missing") != 0 {
		t.Fatalf("counter values wrong: %s", c.String())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "acts" || names[1] != "hits" {
		t.Fatalf("Names = %v", names)
	}
	var d CounterSet
	d.Add("acts", 10)
	c.Merge(&d)
	if c.Get("acts") != 15 {
		t.Fatalf("merge failed: %d", c.Get("acts"))
	}
	c.Reset()
	if c.Get("acts") != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 4) // buckets [0,10) [10,20) [20,30) [30,40), overflow >= 40
	for _, s := range []uint64{0, 5, 9, 10, 25, 39, 40, 1000} {
		h.Observe(s)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Bucket(0) != 3 || h.Bucket(1) != 1 || h.Bucket(2) != 1 || h.Bucket(3) != 1 {
		t.Fatalf("buckets wrong: %d %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	if h.Overflow() != 2 {
		t.Fatalf("Overflow = %d", h.Overflow())
	}
	if h.MaxSample() != 1000 {
		t.Fatalf("MaxSample = %d", h.MaxSample())
	}
	wantMean := float64(0+5+9+10+25+39+40+1000) / 8
	if !almostEqual(h.MeanSample(), wantMean, 1e-9) {
		t.Fatalf("MeanSample = %v, want %v", h.MeanSample(), wantMean)
	}
}

// Property: histogram count equals observations and bucket sum + overflow
// equals count.
func TestHistogramConservation(t *testing.T) {
	r := NewRand(3)
	f := func(n uint8) bool {
		h := NewHistogram(7, 13)
		total := int(n)
		for i := 0; i < total; i++ {
			h.Observe(r.Uint64n(200))
		}
		var sum uint64
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		return h.Count() == uint64(total) && sum+h.Overflow() == h.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
