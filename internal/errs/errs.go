// Package errs defines the error taxonomy of the public run API
// (DESIGN.md §9). Every layer that validates caller input — workload
// spec resolution, mix parsing, trace decoding, simulation and security
// configs — wraps one of these sentinels, so callers of the public Lab
// entry points can classify failures with errors.Is instead of parsing
// messages (or, before this taxonomy existed, recovering panics).
//
// The package has no dependencies by design: it sits below internal/trace
// and is importable from every layer without cycles.
package errs

import "errors"

// ErrUnknownWorkload marks a workload spec that resolves to nothing: a
// misspelled built-in name, an unknown "attack:<pattern>", or a mix entry
// naming either. Surfaced by trace.WorkloadByName and everything layered
// on it (sim configs, experiment scales, CLI -workload flags).
var ErrUnknownWorkload = errors.New("unknown workload")

// ErrBadSpec marks caller input that is structurally invalid: a
// simulation or attack config that fails validation, an unreadable or
// corrupt trace file, out-of-range record/shard parameters, or an
// unknown experiment ID.
var ErrBadSpec = errors.New("invalid specification")

// ErrCancelled marks a run stopped by its context. Errors wrapping it
// also wrap the originating context error, so both
// errors.Is(err, ErrCancelled) and errors.Is(err, context.Canceled)
// (or context.DeadlineExceeded) hold.
var ErrCancelled = errors.New("run cancelled")

// Cancelled wraps a context error (ctx.Err()) into the taxonomy: the
// result matches ErrCancelled and, via Unwrap, the cause itself.
// A nil cause returns ErrCancelled directly.
func Cancelled(cause error) error {
	if cause == nil {
		return ErrCancelled
	}
	return &cancelledError{cause: cause}
}

type cancelledError struct{ cause error }

func (e *cancelledError) Error() string { return "run cancelled: " + e.cause.Error() }

// Is reports identity with the ErrCancelled sentinel; the cause chain is
// reached through Unwrap.
func (e *cancelledError) Is(target error) bool { return target == ErrCancelled }

func (e *cancelledError) Unwrap() error { return e.cause }
