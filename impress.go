// Package impress is the public API of the ImPress reproduction: implicit
// Row-Press mitigation for DRAM (Qureshi, Saxena, Jaleel — MICRO 2024).
//
// The one way in for new code is the Lab: a handle built with functional
// options that owns the resources runs share and exposes every run kind
// as a context-first, error-returning, progress-streaming method:
//
//	lab, err := impress.NewLab(
//	    impress.WithStore(dir),        // persistent result cache
//	    impress.WithParallelism(4),    // sweep worker pool
//	    impress.WithProgress(onEvent), // run-lifecycle stream
//	)
//	res, err := lab.Run(ctx, cfg)            // one simulation
//	tables, err := lab.Experiments(ctx, scale) // every figure
//	out, err := lab.Attack(ctx, acfg, pattern) // security harness
//
// Cancelling ctx stops a simulation within one macro cycle and a sweep
// within one spec boundary; with a store attached, completed work
// persists, so a cancelled sweep rerun resumes warm. Invalid input
// returns errors matching ErrBadSpec / ErrUnknownWorkload instead of
// panicking; see DESIGN.md §9 for the full run-lifecycle contract. The
// pre-Lab free functions (RunSim, RunAttack, Experiments, ...) remain as
// thin deprecated wrappers over a default Lab.
//
// The package re-exports the library's main entry points so downstream
// users need not reach into internal packages:
//
//   - the Unified Charge-Loss Model (Model, NewModel, EACT arithmetic);
//   - the Row-Press defense designs (Design: NoRP, ExPress, ImpressN,
//     ImpressP) and their per-bank event policies;
//   - the four Rowhammer trackers (Graphene, PARA, Mithril, MINT);
//   - the single-bank security harness (AttackConfig, RunAttack) and the
//     adversarial patterns;
//   - the full-system performance simulator (SimConfig, RunSim) with the
//     paper's 20 synthetic workloads, arbitrary per-core co-run mixes
//     including attack-pattern aggressor cores (MixWorkloads,
//     WorkloadByName specs), and trace record/replay (RecordTrace,
//     WorkloadTrace) with a bit-identical replay guarantee;
//   - the experiment harness that regenerates every table and figure
//     (Experiments, QuickScale, FullScale), backed by a concurrent
//     memoizing run scheduler (ExperimentRunner, ExperimentsParallel);
//   - a persistent, content-addressed result store (ResultStore,
//     OpenResultStore) that caches simulation results on disk keyed by
//     the fully-resolved run configuration, so repeated sweeps — and
//     sweeps sharded across machines via ExperimentRunner.Shard — pay
//     for each distinct simulation exactly once.
//
// Quick start:
//
//	model := impress.NewModel(impress.AlphaLongDuration)
//	damage := model.AccessTCL(impress.DDR5().TREFI) // one long RP access
//
//	design := impress.NewDesign(impress.ImpressP)
//	cfg := impress.AttackConfig{
//	    Design:    design,
//	    DesignTRH: 4000,
//	    AlphaTrue: 1,
//	    Tracker:   func(trh float64) impress.Tracker { return impress.NewGraphene(trh) },
//	}
//	res := impress.RunAttack(cfg, &impress.RowPressPattern{Row: 1, TON: impress.DDR5().TREFI, Timings: impress.DDR5()})
//	fmt.Println(res.MaxDamage) // bounded near TRH/3: contained
//
// See the runnable programs under examples/ for complete scenarios and
// DESIGN.md / EXPERIMENTS.md for the reproduction methodology.
package impress

import (
	"context"
	"io"

	"impress/internal/attack"
	"impress/internal/clm"
	"impress/internal/core"
	"impress/internal/dram"
	"impress/internal/experiments"
	"impress/internal/labd"
	"impress/internal/resultstore"
	"impress/internal/security"
	"impress/internal/sim"
	"impress/internal/stats"
	"impress/internal/trace"
	"impress/internal/trackers"
)

// ---- Charge-loss model (paper Section IV) ----

// Model is the Conservative Linear Model of Equation 3.
type Model = clm.Model

// EACT is a fixed-point Equivalent Activation Count (7 fractional bits).
type EACT = clm.EACT

// EACTCalculator converts row-open times into EACT values (Fig. 11).
type EACTCalculator = clm.Calculator

// Charge-leakage slopes from the paper.
const (
	AlphaShortDuration     = clm.AlphaShortDuration     // 0.35
	AlphaLongDuration      = clm.AlphaLongDuration      // 0.48
	AlphaDeviceIndependent = clm.AlphaDeviceIndependent // 1.0
)

// One is the fixed-point representation of a single activation.
const One = clm.One

// FracBits is ImPress-P's default fractional EACT precision (7 bits).
const FracBits = clm.FracBits

// ChargeAccess is one activation in a charge-loss pattern: its row-open
// time and the idle gap that follows. Model.PatternTCL sums a pattern's
// damage in activation-equivalents.
type ChargeAccess = clm.Access

// NewModel returns a CLM with the given alpha over DDR5 timings.
func NewModel(alpha float64) Model { return clm.New(alpha) }

// NewEACTCalculator returns a full-precision EACT calculator.
func NewEACTCalculator(t Timings) EACTCalculator { return clm.NewCalculator(t) }

// FracBitsEffectiveThreshold is the Fig. 12 precision/threshold trade-off.
func FracBitsEffectiveThreshold(bits int) float64 {
	return clm.FracBitsEffectiveThreshold(bits)
}

// ---- DRAM substrate ----

// Tick is the 125 ps simulation time unit.
type Tick = dram.Tick

// Timings is the DDR5 timing set (paper Table I).
type Timings = dram.Timings

// DDR5 returns the paper's Table I timings.
func DDR5() Timings { return dram.DDR5() }

// Ns converts nanoseconds to ticks.
func Ns(ns int64) Tick { return dram.Ns(ns) }

// ---- Defense designs (the paper's contribution) ----

// Design is a Row-Press defense configuration.
type Design = core.Design

// DesignKind selects among the paper's designs.
type DesignKind = core.Kind

// The four designs analyzed by the paper.
const (
	NoRP     = core.NoRP
	ExPress  = core.ExPress
	ImpressN = core.ImpressN
	ImpressP = core.ImpressP
)

// NewDesign returns a design with the paper's default parameters.
func NewDesign(kind DesignKind) Design { return core.NewDesign(kind) }

// BankPolicy is the per-bank defense state machine.
type BankPolicy = core.BankPolicy

// NewBankPolicy builds the per-bank policy for a design.
func NewBankPolicy(d Design) BankPolicy { return core.NewBankPolicy(d) }

// ---- Trackers (paper Section II-C) ----

// Tracker is the common aggressor-tracking interface.
type Tracker = trackers.Tracker

// Rand is the deterministic PRNG used by probabilistic trackers.
type Rand = stats.Rand

// NewRand returns a seeded deterministic generator.
func NewRand(seed uint64) *Rand { return stats.NewRand(seed) }

// NewGraphene returns a Misra-Gries tracker tolerating trh.
func NewGraphene(trh float64) Tracker { return trackers.NewGraphene(trh) }

// NewPARA returns a probabilistic tracker tolerating trh.
func NewPARA(trh float64, rng *Rand) Tracker { return trackers.NewPARA(trh, rng) }

// NewMithril returns an in-DRAM counter tracker tolerating trh at the
// given RFM threshold.
func NewMithril(trh float64, rfmth int) Tracker { return trackers.NewMithril(trh, rfmth) }

// NewMINT returns the single-entry in-DRAM tracker at the given RFM
// threshold (tolerating 20x RFMTH).
func NewMINT(rfmth int, rng *Rand) Tracker { return trackers.NewMINT(rfmth, rng) }

// MINTToleratedTRH is MINT's figure of merit.
func MINTToleratedTRH(rfmth int) float64 { return trackers.MINTToleratedTRH(rfmth) }

// NewPRAC returns a Per-Row Activation Counting tracker tolerating trh
// (the JEDEC DDR5 mechanism of Section VI-F; compose with ImPress-P for
// Row-Press protection).
func NewPRAC(trh float64) Tracker { return trackers.NewPRAC(trh) }

// NewHydra returns the Hydra hybrid tracker tolerating trh: SRAM group
// counters that spill to exact per-row counts on saturation.
func NewHydra(trh float64) Tracker { return trackers.NewHydra(trh) }

// NewABACuS returns the ABACuS shared-counter tracker tolerating trh:
// one counter row shared across banks, evicted without inheritance.
func NewABACuS(trh float64) Tracker { return trackers.NewABACuS(trh) }

// ---- Security harness (paper Sections V-VI, Appendix B) ----

// AttackConfig describes one security experiment.
type AttackConfig = security.Config

// AttackResult is the harness output.
type AttackResult = security.Result

// AttackTrackerFactory builds per-run trackers for the security harness.
type AttackTrackerFactory = security.TrackerFactory

// RunAttack replays a pattern against a (defense, tracker) pair.
//
// Deprecated: RunAttack panics on invalid input and cannot be
// cancelled; it delegates to a default Lab and is kept so existing call
// sites keep compiling and behaving identically. Use Lab.Attack.
func RunAttack(cfg AttackConfig, p AttackPattern) AttackResult {
	res, err := defaultLab.Attack(context.Background(), cfg, p)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// AttackPattern generates an adversarial access sequence.
type AttackPattern = attack.Pattern

// MonteCarloResult summarizes a reliability-trial ensemble.
type MonteCarloResult = security.MonteCarloResult

// SeededTrackerFactory builds trackers from explicit seeds for
// Monte-Carlo trials.
type SeededTrackerFactory = security.SeededTrackerFactory

// MonteCarlo estimates empirical failure fractions over independent
// attack trials (the paper's 0.1 FIT reliability methodology).
func MonteCarlo(cfg AttackConfig, newPattern func() AttackPattern,
	newTracker SeededTrackerFactory, trials int, baseSeed uint64) MonteCarloResult {
	return security.MonteCarlo(cfg, newPattern, newTracker, trials, baseSeed)
}

// TrackerStorage is one tracker's SRAM budget (paper Section VI-C).
type TrackerStorage = security.TrackerStorage

// DesignStorage is a defense design's tracker-storage requirement
// relative to No-RP.
type DesignStorage = security.DesignStorage

// StorageComparison returns the Section VI-C storage table for a
// tracker ("graphene" or "mithril") across the four designs.
func StorageComparison(tracker string, designTRH float64, rfmth int, alpha float64) []DesignStorage {
	return security.StorageComparison(tracker, designTRH, rfmth, alpha)
}

// MINTStorageBytes is MINT's per-bank storage with fracBits of ImPress-P
// EACT precision (0 = plain Rowhammer MINT).
func MINTStorageBytes(rfmth, fracBits int) int {
	return security.MINTStorageBytes(rfmth, fracBits)
}

// SearchResult is a worst-case attack-search outcome.
type SearchResult = security.SearchResult

// SearchWorstCase sweeps the attacker strategy grid (Rowhammer, Row-Press
// tON grid, decoy, combined loops) and returns the maximizing pattern.
func SearchWorstCase(cfg AttackConfig) SearchResult {
	return security.SearchWorstCase(cfg)
}

// The paper's attack patterns.
type (
	// RowhammerPattern is the classic fast-activation attack.
	RowhammerPattern = attack.Rowhammer
	// RowPressPattern holds the row open for a fixed time per round.
	RowPressPattern = attack.RowPress
	// DecoyPattern is the Fig. 10 worst case against ImPress-N.
	DecoyPattern = attack.Decoy
	// CombinedPattern is the parameterized Fig. 17 RH+RP loop.
	CombinedPattern = attack.CombinedK
)

// ---- Performance simulator (paper Section III) ----

// SimConfig describes one full-system simulation.
type SimConfig = sim.Config

// SimResult is the simulation output.
type SimResult = sim.Result

// TrackerKind names a tracker for the simulator.
type TrackerKind = sim.TrackerKind

// Simulator tracker choices.
const (
	TrackerNone     = sim.TrackerNone
	TrackerGraphene = sim.TrackerGraphene
	TrackerPARA     = sim.TrackerPARA
	TrackerMithril  = sim.TrackerMithril
	TrackerMINT     = sim.TrackerMINT
	TrackerHydra    = sim.TrackerHydra
	TrackerABACuS   = sim.TrackerABACuS
)

// SimClockMode selects the simulator's stepping strategy.
type SimClockMode = sim.ClockMode

// Simulator clocking choices: the event-driven clock (default) skips
// provably idle cycles and is bit-identical to cycle-accurate stepping;
// lockstep runs both and panics on the first divergence (debug); sampled
// is the explicitly approximate interval-sampling mode, reporting
// estimates with 95% confidence intervals (SimResult.Estimates).
const (
	SimClockEventDriven   = sim.ClockEventDriven
	SimClockCycleAccurate = sim.ClockCycleAccurate
	SimClockLockstep      = sim.ClockLockstep
	SimClockSampled       = sim.ClockSampled
)

// Workload is a named synthetic workload.
type Workload = trace.Workload

// Workloads returns the paper's 20-workload evaluation list.
func Workloads() []Workload { return trace.Workloads() }

// WorkloadByName resolves a workload spec: one of the 20 built-in names,
// an "attack:<pattern>" adversarial workload, or an arbitrary per-core
// co-run mix "mix:<entry>,<entry>,..." (e.g. "mix:mcf,gcc,attack:hammer").
func WorkloadByName(name string) (Workload, error) { return trace.WorkloadByName(name) }

// MixWorkloads builds a per-core co-run workload: core i runs
// sources[i%len(sources)], each with its own disjoint address range.
func MixWorkloads(name string, sources []Workload) (Workload, error) {
	return trace.Mix(name, sources)
}

// ---- Trace record/replay (DESIGN.md §7) ----

// WorkloadTrace is a recorded multi-core request stream in the versioned
// binary trace format. Its Workload method returns a replayable workload
// whose simulation is bit-identical to the live run it was recorded
// from; Encode/WriteFile and DecodeTrace/ReadTraceFile move traces to
// and from disk.
type WorkloadTrace = trace.Trace

// RecordTrace drains perCore requests per core from the workload's
// generators (seeded as a live simulation would seed them) into a
// replayable trace.
//
// Deprecated: RecordTrace panics on invalid counts and cannot be
// cancelled; it delegates to a default Lab. Use Lab.Record.
func RecordTrace(w Workload, cores, perCore int, seed uint64) *WorkloadTrace {
	t, err := defaultLab.Record(context.Background(), w, cores, perCore, seed)
	if err != nil {
		panic("trace: " + err.Error())
	}
	return t
}

// DecodeTrace reads a binary trace from a stream; it returns an error —
// never panics — on corrupt input.
func DecodeTrace(r io.Reader) (*WorkloadTrace, error) { return trace.Decode(r) }

// ReadTraceFile loads a recorded trace file.
func ReadTraceFile(path string) (*WorkloadTrace, error) { return trace.ReadFile(path) }

// TraceHeader is a trace file's self-describing header: name, class,
// seed, line size and core count.
type TraceHeader = trace.Header

// TraceReader streams a recorded trace from disk: opening one reads
// only the header and frame index, and the Workload it returns replays
// with a fixed per-core frame buffer instead of materializing the
// streams — the way to replay traces larger than RAM. See
// Lab.RecordFile for the recording side.
type TraceReader = trace.Reader

// OpenTraceReader opens the trace file at path for streaming replay.
// The caller must keep the reader open while any simulation replaying
// it runs, and close it afterwards.
func OpenTraceReader(path string) (*TraceReader, error) { return trace.OpenReader(path) }

// DefaultSimConfig returns the Table II system for a workload/defense.
func DefaultSimConfig(w Workload, d Design, tracker TrackerKind) SimConfig {
	return sim.DefaultConfig(w, d, tracker)
}

// RunSim executes a performance simulation.
//
// Deprecated: RunSim panics on invalid input and cannot be cancelled;
// it delegates to a default Lab and is kept so existing call sites keep
// compiling and behaving identically. Use Lab.Run.
func RunSim(cfg SimConfig) SimResult {
	res, err := defaultLab.Run(context.Background(), cfg)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// ---- Persistent result store (DESIGN.md §8) ----

// ResultStore is an on-disk, content-addressed cache of simulation
// results, safe for concurrent use across goroutines, processes and
// machines sharing one directory. Attach one to an ExperimentRunner
// (its Store field) to make sweeps restartable and shardable, or drive
// it directly with ResultSpecFor + Get/Put.
type ResultStore = resultstore.Store

// ResultSpec is the canonical, hashable description of one
// fully-resolved simulation run — the store's key preimage. Two configs
// with equal specs are contractually bound to produce bit-identical
// results (clock mode, for instance, is excluded).
type ResultSpec = resultstore.Spec

// OpenResultStore opens a result-store directory, creating it if
// needed.
func OpenResultStore(dir string) (*ResultStore, error) { return resultstore.Open(dir) }

// ResultSpecFor derives the canonical spec (and thereby the store key)
// for a simulation config. It fails only when the config replays a
// trace file that cannot be read (the file's content is part of the
// key).
func ResultSpecFor(cfg SimConfig) (ResultSpec, error) { return resultstore.SpecFor(cfg) }

// ---- Experiment harness ----

// ExperimentTable is one regenerated table/figure.
type ExperimentTable = experiments.Table

// ExperimentScale controls simulation length.
type ExperimentScale = experiments.Scale

// ExperimentRunner executes and memoizes simulation runs. It is safe for
// concurrent use; set Parallelism to bound the Prefetch worker pool
// (0 = GOMAXPROCS). Parallel execution is byte-identical to serial. Set
// Store to persist results across processes, and Shard to split a sweep
// across machines merging through one store.
type ExperimentRunner = experiments.Runner

// ExperimentRunSpec fully describes one simulation run for memoization
// and prefetching.
type ExperimentRunSpec = experiments.RunSpec

// ExperimentTRH returns an explicit DesignTRH override for a run spec
// (the zero value of the field means "keep the sim default").
func ExperimentTRH(v float64) experiments.Opt[float64] { return experiments.TRH(v) }

// ExperimentRFM returns an explicit RFMTH override for a run spec.
func ExperimentRFM(v int) experiments.Opt[int] { return experiments.RFM(v) }

// NewExperimentRunner builds a concurrent-safe memoizing runner at the
// given scale.
func NewExperimentRunner(scale ExperimentScale) *ExperimentRunner {
	return experiments.NewRunner(scale)
}

// QuickScale is the CI-sized experiment scale.
func QuickScale() ExperimentScale { return experiments.QuickScale() }

// StandardScale is the all-workload scale EXPERIMENTS.md reports.
func StandardScale() ExperimentScale { return experiments.StandardScale() }

// FullScale is the complete-reproduction scale.
func FullScale() ExperimentScale { return experiments.FullScale() }

// Experiments regenerates every table and figure at the given scale,
// running independent simulations concurrently (GOMAXPROCS workers).
//
// Deprecated: Experiments panics on invalid scales and cannot be
// cancelled or observed; it delegates to a default Lab. Use
// Lab.Experiments.
func Experiments(scale ExperimentScale) []*ExperimentTable {
	tables, err := defaultLab.Experiments(context.Background(), scale)
	if err != nil {
		panic(err.Error())
	}
	return tables
}

// ExperimentsParallel regenerates every table and figure at the given
// scale with an explicit simulation worker count (1 = fully serial,
// 0 = GOMAXPROCS, negative clamps to serial). Output is byte-identical
// at every parallelism level.
//
// Deprecated: use Lab.Experiments with WithParallelism.
func ExperimentsParallel(scale ExperimentScale, parallelism int) []*ExperimentTable {
	l := &Lab{parallelism: parallelism}
	tables, err := l.Experiments(context.Background(), scale)
	if err != nil {
		panic(err.Error())
	}
	return tables
}

// AnalyticalExperiments regenerates the simulation-free subset.
func AnalyticalExperiments() []*ExperimentTable { return experiments.Analytical() }

// ---- Sweep service (DESIGN.md §11) ----

// SweepClient talks to an impress-labd daemon: the experiment sweeps a
// local ExperimentRunner performs, submitted to a long-running service
// instead. Errors reconstruct the same taxonomy local runs return, so
// errors.Is(err, ErrBadSpec) works identically for a remote sweep.
type SweepClient = labd.Client

// SweepRequest selects a sweep to submit: the impress-experiments
// CLI's scale/ID/shard selections as a struct. The zero value is the
// full quick-scale sweep.
type SweepRequest = labd.SweepRequest

// SweepJob is the snapshot of one submitted sweep: lifecycle state,
// shard layout, and the cache-hit/simulated counters that prove a warm
// resubmit simulated nothing.
type SweepJob = labd.Job

// SweepJobState enumerates a sweep job's lifecycle states.
type SweepJobState = labd.JobState

// The sweep job lifecycle: queued -> running -> one of the three
// terminal states.
const (
	SweepStateQueued    = labd.StateQueued
	SweepStateRunning   = labd.StateRunning
	SweepStateDone      = labd.StateDone
	SweepStateFailed    = labd.StateFailed
	SweepStateCancelled = labd.StateCancelled
)

// SweepEvent is one entry in a job's progress stream: the Lab's
// Progress events on the wire, plus state transitions and the lagged
// marker a slow consumer receives instead of back-pressuring the sweep.
type SweepEvent = labd.Event

// SweepTables is the rendered-tables response for a job; each table's
// Text is the byte-exact Render output of the equivalent local run.
type SweepTables = labd.TablesResponse

// NewSweepClient returns a client for the impress-labd daemon at base
// (e.g. "http://127.0.0.1:8057"). It opens no connection until a
// method is called; cancel the per-call context to abort requests and
// long-lived event streams.
func NewSweepClient(base string) *SweepClient { return labd.NewClient(base) }
