package impress_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocLinks is the repository's markdown link check (the CI docs job
// runs it explicitly): every relative link in the root markdown files
// must point at an existing file, and every fragment link must resolve
// to a real heading anchor, so the documentation pass cannot rot as
// files move. External (http/https) links are out of scope — the check
// must stay hermetic.
func TestDocLinks(t *testing.T) {
	// Only documents this repository authors: SNIPPETS.md / PAPERS.md /
	// PAPER.md quote external material verbatim (dangling links and all)
	// and ISSUE.md is per-PR scaffolding.
	docs := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGES.md", "ROADMAP.md"}
	for _, doc := range docs {
		if _, err := os.Stat(doc); err != nil {
			t.Fatalf("expected root document missing: %v", err)
		}
	}
	for _, doc := range docs {
		for _, link := range markdownLinks(t, doc) {
			checkLink(t, doc, link)
		}
	}
}

// linkRE matches inline markdown links [text](target); images share the
// syntax and are checked the same way.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func markdownLinks(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var links []string
	for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
		links = append(links, m[1])
	}
	return links
}

func checkLink(t *testing.T, doc, link string) {
	t.Helper()
	if strings.HasPrefix(link, "http://") || strings.HasPrefix(link, "https://") ||
		strings.HasPrefix(link, "mailto:") {
		return
	}
	target, fragment, _ := strings.Cut(link, "#")
	file := doc
	if target != "" {
		file = filepath.Join(filepath.Dir(doc), target)
		if _, err := os.Stat(file); err != nil {
			t.Errorf("%s: broken link %q: %v", doc, link, err)
			return
		}
	}
	if fragment == "" {
		return
	}
	if !strings.HasSuffix(file, ".md") {
		return // anchors into non-markdown files are browser-defined
	}
	anchors, err := headingAnchors(file)
	if err != nil {
		t.Errorf("%s: link %q: %v", doc, link, err)
		return
	}
	if !anchors[fragment] {
		t.Errorf("%s: link %q: no heading in %s produces anchor #%s", doc, link, file, fragment)
	}
}

// headingAnchors collects the GitHub-style anchor for every markdown
// heading in file: lowercase, punctuation stripped, spaces to hyphens,
// with -N suffixes deduplicating repeats.
func headingAnchors(file string) (map[string]bool, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	anchors := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if text == line || !strings.HasPrefix(text, " ") {
			continue // not a heading (e.g. a #! line)
		}
		a := githubAnchor(strings.TrimSpace(text))
		if n := counts[a]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", a, n)] = true
		} else {
			anchors[a] = true
		}
		counts[a]++
	}
	return anchors, nil
}

// githubAnchor reduces a heading to its anchor: lowercase, keep
// letters/digits/spaces/hyphens/underscores, spaces become hyphens.
func githubAnchor(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteRune('-')
		case r == '-' || r == '_',
			'a' <= r && r <= 'z',
			'0' <= r && r <= '9',
			r > 127: // GitHub keeps non-ASCII letters (e.g. §)
			b.WriteRune(r)
		}
	}
	return b.String()
}
