// This example exercises the Lab's run lifecycle (DESIGN.md §9): a
// progress-observed experiment sweep is cancelled mid-flight from its
// own progress stream, the typed error is classified with errors.Is,
// and a second sweep against the same result store resumes warm —
// everything simulated before the cancel is served from disk.
//
// It doubles as the CI cancelled-run smoke test, so it exits non-zero
// if any lifecycle guarantee fails.
//
// Run with: go run ./examples/cancellation
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	"impress"
)

func main() {
	dir, err := os.MkdirTemp("", "impress-cancel-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A tiny sweep: one figure's specs at quick scale, serial so the
	// event stream is deterministic.
	const cancelAfter = 3 // simulations to let finish before cancelling
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	finished := 0
	lab, err := impress.NewLab(
		impress.WithStore(dir),
		impress.WithParallelism(1),
		impress.WithProgress(func(p impress.Progress) {
			fmt.Printf("  [progress] %s\n", p)
			if p.Kind == impress.ProgressSpecFinished {
				if finished++; finished == cancelAfter {
					cancel() // stop the sweep from inside its own stream
				}
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sweep 1: cancelled after", cancelAfter, "simulations")
	_, err = lab.Experiments(ctx, impress.QuickScale(), impress.ExperimentsOnly("fig3"))
	switch {
	case err == nil:
		log.Fatal("the cancelled sweep reported success")
	case !errors.Is(err, impress.ErrCancelled) || !errors.Is(err, context.Canceled):
		log.Fatalf("want a typed cancellation error, got: %v", err)
	}
	fmt.Printf("  typed error as expected: %v\n", err)

	// The warm rerun: everything the first sweep completed is served
	// from the store; only the remainder simulates.
	fmt.Println("sweep 2: resuming from", dir)
	var resumed struct{ hits, simulated int }
	lab2, err := impress.NewLab(
		impress.WithStore(dir),
		impress.WithParallelism(1),
		impress.WithProgress(func(p impress.Progress) {
			switch p.Kind {
			case impress.ProgressSpecCacheHit:
				resumed.hits++
			case impress.ProgressSpecFinished:
				resumed.simulated++
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	tables, err := lab2.Experiments(context.Background(), impress.QuickScale(), impress.ExperimentsOnly("fig3"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  resumed warm: %d served from the store, %d simulated, %d table(s) rendered\n",
		resumed.hits, resumed.simulated, len(tables))
	if resumed.hits < cancelAfter {
		log.Fatalf("resume served only %d cached results; the cancelled sweep should have persisted %d",
			resumed.hits, cancelAfter)
	}
}
