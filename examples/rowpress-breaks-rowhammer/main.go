// This example reproduces the paper's motivation and headline result in
// one run: a Graphene Rowhammer tracker provisioned for TRH = 4000
// contains a classic Rowhammer attack, is broken by Row-Press, and is
// repaired transparently — at full threshold — by ImPress-P. Attack runs
// go through Lab.Attack: context-first and error-returning.
//
// Run with: go run ./examples/rowpress-breaks-rowhammer
package main

import (
	"context"
	"fmt"
	"log"

	"impress"
)

const trh = 4000

func main() {
	ctx := context.Background()
	lab, err := impress.NewLab()
	if err != nil {
		log.Fatal(err)
	}
	tm := impress.DDR5()
	patterns := []impress.AttackPattern{
		&impress.RowhammerPattern{Row: 1 << 20, Timings: tm},
		&impress.RowPressPattern{Row: 1 << 20, TON: tm.TREFI, Timings: tm},  // 1 tREFI hold
		&impress.RowPressPattern{Row: 1 << 20, TON: tm.TONMax, Timings: tm}, // max DDR5 hold
		&impress.DecoyPattern{Row: 1 << 20, DecoyRow: 1 << 24, Spread: 8192, Timings: tm},
	}
	designs := []impress.Design{
		impress.NewDesign(impress.NoRP),
		impress.NewDesign(impress.ExPress),  // limits tON, halves the threshold
		impress.NewDesign(impress.ImpressN), // window-granular, halves the threshold
		impress.NewDesign(impress.ImpressP), // precise, keeps the full threshold
	}

	fmt.Printf("Graphene tracker, device TRH = %d, device alpha = %.2f\n", trh, impress.AlphaLongDuration)
	fmt.Printf("%-22s", "peak damage under:")
	for _, d := range designs {
		fmt.Printf("  %-12s", d.Kind)
	}
	fmt.Println()

	for _, p := range patterns {
		fmt.Printf("%-22s", p.Name())
		for _, d := range designs {
			cfg := impress.AttackConfig{
				Design:    d,
				DesignTRH: trh,
				AlphaTrue: impress.AlphaLongDuration,
				Tracker:   func(t float64) impress.Tracker { return impress.NewGraphene(t) },
			}
			res, err := lab.Attack(ctx, cfg, clonePattern(p, tm))
			if err != nil {
				log.Fatal(err)
			}
			mark := ""
			if res.MaxDamage >= trh {
				mark = "*FLIP*"
			}
			fmt.Printf("  %-12s", fmt.Sprintf("%.0f%s", res.MaxDamage, mark))
		}
		fmt.Println()
	}
	fmt.Println("\n*FLIP* marks peak damage >= TRH: the attack induces a bit flip.")
	fmt.Println("Tracker provisioning: No-RP and ImPress-P run at TRH; ExPress and")
	fmt.Println("ImPress-N must be retuned to TRH/2 (alpha = 1), doubling tracker storage.")
}

// clonePattern builds a fresh pattern instance so stateful patterns (the
// decoy) start clean for every configuration.
func clonePattern(p impress.AttackPattern, tm impress.Timings) impress.AttackPattern {
	switch q := p.(type) {
	case *impress.RowhammerPattern:
		return &impress.RowhammerPattern{Row: q.Row, Timings: tm}
	case *impress.RowPressPattern:
		return &impress.RowPressPattern{Row: q.Row, TON: q.TON, Timings: tm}
	case *impress.DecoyPattern:
		return &impress.DecoyPattern{Row: q.Row, DecoyRow: q.DecoyRow, Spread: q.Spread, Timings: tm}
	default:
		return p
	}
}
