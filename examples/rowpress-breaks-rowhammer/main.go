// This example reproduces the paper's motivation and headline result in
// one run: a Graphene Rowhammer tracker provisioned for TRH = 4000
// contains a classic Rowhammer attack, is broken by Row-Press, and is
// repaired transparently — at full threshold — by ImPress-P.
//
// Run with: go run ./examples/rowpress-breaks-rowhammer
package main

import (
	"fmt"

	"impress/internal/attack"
	"impress/internal/clm"
	"impress/internal/core"
	"impress/internal/dram"
	"impress/internal/security"
	"impress/internal/trackers"
)

const trh = 4000

func main() {
	tm := dram.DDR5()
	patterns := []attack.Pattern{
		&attack.Rowhammer{Row: 1 << 20, Timings: tm},
		&attack.RowPress{Row: 1 << 20, TON: tm.TREFI, Timings: tm},  // 1 tREFI hold
		&attack.RowPress{Row: 1 << 20, TON: tm.TONMax, Timings: tm}, // max DDR5 hold
		&attack.Decoy{Row: 1 << 20, DecoyRow: 1 << 24, Spread: 8192, Timings: tm},
	}
	designs := []core.Design{
		core.NewDesign(core.NoRP),
		core.NewDesign(core.ExPress),  // limits tON, halves the threshold
		core.NewDesign(core.ImpressN), // window-granular, halves the threshold
		core.NewDesign(core.ImpressP), // precise, keeps the full threshold
	}

	fmt.Printf("Graphene tracker, device TRH = %d, device alpha = %.2f\n", trh, clm.AlphaLongDuration)
	fmt.Printf("%-22s", "peak damage under:")
	for _, d := range designs {
		fmt.Printf("  %-12s", d.Kind)
	}
	fmt.Println()

	for _, p := range patterns {
		fmt.Printf("%-22s", p.Name())
		for _, d := range designs {
			cfg := security.Config{
				Design:    d,
				DesignTRH: trh,
				AlphaTrue: clm.AlphaLongDuration,
				Tracker:   func(t float64) trackers.Tracker { return trackers.NewGraphene(t) },
			}
			res := security.Run(cfg, clonePattern(p, tm))
			mark := ""
			if res.MaxDamage >= trh {
				mark = "*FLIP*"
			}
			fmt.Printf("  %-12s", fmt.Sprintf("%.0f%s", res.MaxDamage, mark))
		}
		fmt.Println()
	}
	fmt.Println("\n*FLIP* marks peak damage >= TRH: the attack induces a bit flip.")
	fmt.Println("Tracker provisioning: No-RP and ImPress-P run at TRH; ExPress and")
	fmt.Println("ImPress-N must be retuned to TRH/2 (alpha = 1), doubling tracker storage.")
}

// clonePattern builds a fresh pattern instance so stateful patterns (the
// decoy) start clean for every configuration.
func clonePattern(p attack.Pattern, tm dram.Timings) attack.Pattern {
	switch q := p.(type) {
	case *attack.Rowhammer:
		return &attack.Rowhammer{Row: q.Row, Timings: tm}
	case *attack.RowPress:
		return &attack.RowPress{Row: q.Row, TON: q.TON, Timings: tm}
	case *attack.Decoy:
		return &attack.Decoy{Row: q.Row, DecoyRow: q.DecoyRow, Spread: q.Spread, Timings: tm}
	default:
		return p
	}
}
