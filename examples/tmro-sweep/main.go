// This example reproduces the Fig. 3 phenomenon on the full performance
// simulator: limiting row-open time (tMRO, the ExPress approach) slows
// streaming workloads by cutting row-buffer hits, while pointer-chasing
// workloads barely notice — and ImPress-P needs no limit at all. All
// simulations run through one Lab, so repeated configurations are
// memoized and a ctrl-C would stop the sweep cleanly.
//
// Run with: go run ./examples/tmro-sweep
package main

import (
	"context"
	"fmt"
	"log"

	"impress"
)

func main() {
	ctx := context.Background()
	lab, err := impress.NewLab()
	if err != nil {
		log.Fatal(err)
	}
	workloads := []string{"copy", "mcf"} // one streaming, one irregular
	tmros := []int64{36, 66, 96, 186, 336, 636}

	for _, name := range workloads {
		w, err := impress.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		base := run(ctx, lab, w, impress.NewDesign(impress.NoRP))
		baseHits := rowBufferHitRate(base)
		fmt.Printf("%s: baseline row-buffer hit rate %.2f\n", name, baseHits)
		fmt.Printf("  %-12s %-12s %-12s %s\n", "tMRO (ns)", "perf", "rb hit rate", "forced closures")
		for _, ns := range tmros {
			design := impress.NewDesign(impress.ExPress).WithTMRO(impress.Ns(ns)).WithEmpiricalThreshold()
			res := run(ctx, lab, w, design)
			fmt.Printf("  %-12d %-12.3f %-12.3f %d\n",
				ns, res.NormalizeTo(base), rowBufferHitRate(res), res.Mem.ForcedClosures)
		}
		// ImPress-P for contrast: no tON limit, no closures, no slowdown.
		resP := run(ctx, lab, w, impress.NewDesign(impress.ImpressP))
		fmt.Printf("  %-12s %-12.3f %-12.3f %d\n\n",
			"impress-p", resP.NormalizeTo(base), rowBufferHitRate(resP), resP.Mem.ForcedClosures)
	}
}

func run(ctx context.Context, lab *impress.Lab, w impress.Workload, d impress.Design) impress.SimResult {
	cfg := impress.DefaultSimConfig(w, d, impress.TrackerNone)
	cfg.WarmupInstructions = 50_000
	cfg.RunInstructions = 250_000
	res, err := lab.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func rowBufferHitRate(r impress.SimResult) float64 {
	total := r.Mem.RowHits + r.Mem.RowMisses
	if total == 0 {
		return 0
	}
	return float64(r.Mem.RowHits) / float64(total)
}
