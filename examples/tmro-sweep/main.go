// This example reproduces the Fig. 3 phenomenon on the full performance
// simulator: limiting row-open time (tMRO, the ExPress approach) slows
// streaming workloads by cutting row-buffer hits, while pointer-chasing
// workloads barely notice — and ImPress-P needs no limit at all.
//
// Run with: go run ./examples/tmro-sweep
package main

import (
	"fmt"

	"impress/internal/core"
	"impress/internal/dram"
	"impress/internal/sim"
	"impress/internal/trace"
)

func main() {
	workloads := []string{"copy", "mcf"} // one streaming, one irregular
	tmros := []int64{36, 66, 96, 186, 336, 636}

	for _, name := range workloads {
		w, err := trace.WorkloadByName(name)
		if err != nil {
			panic(err)
		}
		base := run(w, core.NewDesign(core.NoRP))
		baseHits := rowBufferHitRate(base)
		fmt.Printf("%s: baseline row-buffer hit rate %.2f\n", name, baseHits)
		fmt.Printf("  %-12s %-12s %-12s %s\n", "tMRO (ns)", "perf", "rb hit rate", "forced closures")
		for _, ns := range tmros {
			design := core.NewDesign(core.ExPress).WithTMRO(dram.Ns(ns)).WithEmpiricalThreshold()
			res := run(w, design)
			fmt.Printf("  %-12d %-12.3f %-12.3f %d\n",
				ns, res.NormalizeTo(base), rowBufferHitRate(res), res.Mem.ForcedClosures)
		}
		// ImPress-P for contrast: no tON limit, no closures, no slowdown.
		resP := run(w, core.NewDesign(core.ImpressP))
		fmt.Printf("  %-12s %-12.3f %-12.3f %d\n\n",
			"impress-p", resP.NormalizeTo(base), rowBufferHitRate(resP), resP.Mem.ForcedClosures)
	}
}

func run(w trace.Workload, d core.Design) sim.Result {
	cfg := sim.DefaultConfig(w, d, sim.TrackerNone)
	cfg.WarmupInstructions = 50_000
	cfg.RunInstructions = 250_000
	return sim.Run(cfg)
}

func rowBufferHitRate(r sim.Result) float64 {
	total := r.Mem.RowHits + r.Mem.RowMisses
	if total == 0 {
		return 0
	}
	return float64(r.Mem.RowHits) / float64(total)
}
