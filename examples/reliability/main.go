// This example runs the Monte-Carlo reliability analysis behind the
// paper's probabilistic-tracker provisioning (Section III-B targets a
// 0.1 FIT bank-failure rate): the distribution of peak victim damage for
// PARA under Rowhammer and Row-Press, without and with ImPress-P.
//
// Run with: go run ./examples/reliability
package main

import (
	"fmt"

	"impress"
)

const (
	trh    = 4000
	trials = 25
)

func main() {
	tm := impress.DDR5()
	seededPARA := impress.SeededTrackerFactory(
		func(trackerTRH float64, seed uint64) impress.AttackTrackerFactory {
			return func(float64) impress.Tracker {
				return impress.NewPARA(trackerTRH, impress.NewRand(seed))
			}
		})

	scenarios := []struct {
		name    string
		design  impress.Design
		pattern func() impress.AttackPattern
	}{
		{"PARA, Rowhammer", impress.NewDesign(impress.NoRP),
			func() impress.AttackPattern {
				return &impress.RowhammerPattern{Row: 1 << 20, Timings: tm}
			}},
		{"PARA, Row-Press (no defense)", impress.NewDesign(impress.NoRP),
			func() impress.AttackPattern {
				return &impress.RowPressPattern{Row: 1 << 20, TON: tm.TREFI, Timings: tm}
			}},
		{"PARA, Row-Press + ImPress-P", impress.NewDesign(impress.ImpressP),
			func() impress.AttackPattern {
				return &impress.RowPressPattern{Row: 1 << 20, TON: tm.TREFI, Timings: tm}
			}},
	}

	fmt.Printf("%-32s %-10s %-10s %-10s %s\n", "scenario", "median", "p99", "max", "failures")
	for i, sc := range scenarios {
		cfg := impress.AttackConfig{
			Design:    sc.design,
			DesignTRH: trh,
			AlphaTrue: impress.AlphaLongDuration,
			Duration:  tm.TREFW / 4, // quarter-window trials keep this quick
		}
		res := impress.MonteCarlo(cfg, sc.pattern, seededPARA, trials, uint64(100+i))
		fmt.Printf("%-32s %-10.0f %-10.0f %-10.0f %d/%d\n",
			sc.name,
			res.DamagePercentile(50), res.DamagePercentile(99), res.MaxDamage,
			res.Failures, res.Trials)
	}
	fmt.Printf("\nfailure = peak damage >= TRH (%d). The paper provisions PARA's\n", trh)
	fmt.Println("selection probability (1/184 at TRH=4K) for a 0.1 FIT target; Row-Press")
	fmt.Println("voids that analysis unless ImPress converts the open time into EACTs.")
}
