// This example compares all four Rowhammer trackers the paper analyzes —
// Graphene, PARA (memory-controller side), Mithril and MINT (in-DRAM) —
// under Row-Press with and without ImPress-P, and prints the storage cost
// of protecting each (Section VI-C).
//
// Run with: go run ./examples/tracker-comparison
package main

import (
	"fmt"

	"impress/internal/attack"
	"impress/internal/clm"
	"impress/internal/core"
	"impress/internal/dram"
	"impress/internal/security"
	"impress/internal/stats"
	"impress/internal/trackers"
)

func main() {
	tm := dram.DDR5()
	seed := uint64(7)

	type entry struct {
		name   string
		trh    float64
		rfmth  int
		make   func(trh float64) trackers.Tracker
		inDRAM bool
	}
	configs := []entry{
		{"graphene", 4000, 0, func(t float64) trackers.Tracker { return trackers.NewGraphene(t) }, false},
		{"para", 4000, 0, func(t float64) trackers.Tracker {
			seed++
			return trackers.NewPARA(t, stats.NewRand(seed))
		}, false},
		{"mithril", 4000, 80, func(t float64) trackers.Tracker { return trackers.NewMithril(t, 80) }, true},
		{"mint", trackers.MINTToleratedTRH(80), 80, func(t float64) trackers.Tracker {
			seed++
			return trackers.NewMINT(80, stats.NewRand(seed))
		}, true},
	}

	fmt.Println("Row-Press attack (row held open for one tREFI), device alpha = 0.48")
	fmt.Printf("%-10s %-10s %-16s %-16s %s\n", "tracker", "TRH", "no-rp damage", "impress-p damage", "verdict")
	for _, c := range configs {
		noRP := runOnce(c.make, core.NewDesign(core.NoRP), c.trh, c.rfmth, tm)
		withP := runOnce(c.make, core.NewDesign(core.ImpressP), c.trh, c.rfmth, tm)
		verdict := "ImPress-P contains it"
		if withP >= c.trh {
			verdict = "still broken!"
		}
		flip := ""
		if noRP >= c.trh {
			flip = " (FLIP)"
		}
		fmt.Printf("%-10s %-10.0f %-16s %-16.0f %s\n",
			c.name, c.trh, fmt.Sprintf("%.0f%s", noRP, flip), withP, verdict)
	}

	fmt.Println("\nStorage cost of Row-Press protection at TRH = 4K (per channel):")
	for _, tr := range []string{"graphene", "mithril"} {
		for _, row := range security.StorageComparison(tr, 4000, 80, 1) {
			fmt.Printf("  %-9s %-10s %4d entries/bank  %5.1f KB  (%.2fx)\n",
				tr, row.Design, row.Storage.EntriesPerBank, row.Storage.ChannelKB, row.RelativeToNoRP)
		}
	}
	fmt.Printf("  %-9s %-10s %26s %d B/bank\n", "mint", "no-rp", "", security.MINTStorageBytes(80, 0))
	fmt.Printf("  %-9s %-10s %26s %d B/bank\n", "mint", "impress-p", "", security.MINTStorageBytes(80, clm.FracBits))
}

func runOnce(factory func(trh float64) trackers.Tracker, d core.Design, trh float64, rfmth int, tm dram.Timings) float64 {
	cfg := security.Config{
		Design:    d,
		DesignTRH: trh,
		AlphaTrue: clm.AlphaLongDuration,
		RFMTH:     rfmth,
		Tracker:   func(t float64) trackers.Tracker { return factory(t) },
	}
	res := security.Run(cfg, &attack.RowPress{Row: 1 << 20, TON: tm.TREFI, Timings: tm})
	return res.MaxDamage
}
