// This example compares all four Rowhammer trackers the paper analyzes —
// Graphene, PARA (memory-controller side), Mithril and MINT (in-DRAM) —
// under Row-Press with and without ImPress-P, and prints the storage cost
// of protecting each (Section VI-C). Attack runs go through Lab.Attack:
// context-first and error-returning.
//
// Run with: go run ./examples/tracker-comparison
package main

import (
	"context"
	"fmt"
	"log"

	"impress"
)

func main() {
	ctx := context.Background()
	lab, err := impress.NewLab()
	if err != nil {
		log.Fatal(err)
	}
	tm := impress.DDR5()
	seed := uint64(7)

	type entry struct {
		name   string
		trh    float64
		rfmth  int
		make   func(trh float64) impress.Tracker
		inDRAM bool
	}
	configs := []entry{
		{"graphene", 4000, 0, func(t float64) impress.Tracker { return impress.NewGraphene(t) }, false},
		{"para", 4000, 0, func(t float64) impress.Tracker {
			seed++
			return impress.NewPARA(t, impress.NewRand(seed))
		}, false},
		{"mithril", 4000, 80, func(t float64) impress.Tracker { return impress.NewMithril(t, 80) }, true},
		{"mint", impress.MINTToleratedTRH(80), 80, func(t float64) impress.Tracker {
			seed++
			return impress.NewMINT(80, impress.NewRand(seed))
		}, true},
	}

	fmt.Println("Row-Press attack (row held open for one tREFI), device alpha = 0.48")
	fmt.Printf("%-10s %-10s %-16s %-16s %s\n", "tracker", "TRH", "no-rp damage", "impress-p damage", "verdict")
	for _, c := range configs {
		noRP := runOnce(ctx, lab, c.make, impress.NewDesign(impress.NoRP), c.trh, c.rfmth, tm)
		withP := runOnce(ctx, lab, c.make, impress.NewDesign(impress.ImpressP), c.trh, c.rfmth, tm)
		verdict := "ImPress-P contains it"
		if withP >= c.trh {
			verdict = "still broken!"
		}
		flip := ""
		if noRP >= c.trh {
			flip = " (FLIP)"
		}
		fmt.Printf("%-10s %-10.0f %-16s %-16.0f %s\n",
			c.name, c.trh, fmt.Sprintf("%.0f%s", noRP, flip), withP, verdict)
	}

	fmt.Println("\nStorage cost of Row-Press protection at TRH = 4K (per channel):")
	for _, tr := range []string{"graphene", "mithril"} {
		for _, row := range impress.StorageComparison(tr, 4000, 80, 1) {
			fmt.Printf("  %-9s %-10s %4d entries/bank  %5.1f KB  (%.2fx)\n",
				tr, row.Design, row.Storage.EntriesPerBank, row.Storage.ChannelKB, row.RelativeToNoRP)
		}
	}
	fmt.Printf("  %-9s %-10s %26s %d B/bank\n", "mint", "no-rp", "", impress.MINTStorageBytes(80, 0))
	fmt.Printf("  %-9s %-10s %26s %d B/bank\n", "mint", "impress-p", "", impress.MINTStorageBytes(80, impress.FracBits))
}

func runOnce(ctx context.Context, lab *impress.Lab, factory func(trh float64) impress.Tracker,
	d impress.Design, trh float64, rfmth int, tm impress.Timings) float64 {
	cfg := impress.AttackConfig{
		Design:    d,
		DesignTRH: trh,
		AlphaTrue: impress.AlphaLongDuration,
		RFMTH:     rfmth,
		Tracker:   func(t float64) impress.Tracker { return factory(t) },
	}
	res, err := lab.Attack(ctx, cfg, &impress.RowPressPattern{Row: 1 << 20, TON: tm.TREFI, Timings: tm})
	if err != nil {
		log.Fatal(err)
	}
	return res.MaxDamage
}
