// Quickstart: the unified charge-loss model, the ImPress-P conversion
// of Row-Press time into equivalent activations, and a first simulation
// through the Lab — the context-first public API every run goes
// through.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"impress"
)

func main() {
	tm := impress.DDR5()

	// 1. The unified charge-loss model (Section IV): one number for any
	// interleaving of Rowhammer and Row-Press.
	model := impress.NewModel(impress.AlphaLongDuration) // alpha = 0.48 covers all devices
	pattern := []impress.ChargeAccess{
		{TON: tm.TRAS},            // a plain Rowhammer activation
		{TON: tm.TRAS + 4*tm.TRC}, // a short Row-Press hold
		{TON: tm.TREFI},           // a full-tREFI Row-Press hold
	}
	fmt.Printf("pattern damage: %.1f activation-equivalents over %.1f us\n",
		model.PatternTCL(pattern),
		float64(model.PatternTime(pattern).ToNs())/1000)

	// 2. Why Row-Press breaks Rowhammer defenses: rounds needed to flip a
	// bit at TRH = 4000 as the row-open time grows.
	fmt.Println("\nactivations needed for a bit flip (TRH = 4000):")
	for _, tonTRC := range []int64{1, 2, 8, 81, 406} {
		tON := tm.TRAS + impress.Tick(tonTRC-1)*tm.TRC
		rounds := model.RoundsToFlip(tON, 4000)
		fmt.Printf("  tON = %4d tRC: %6d rounds (%.0fx fewer than Rowhammer)\n",
			tonTRC, rounds, 4000/float64(rounds))
	}

	// 3. ImPress-P's fix: measure tON, convert to an Equivalent
	// Activation Count, and feed the existing Rowhammer tracker.
	calc := impress.NewEACTCalculator(tm)
	fmt.Println("\nImPress-P EACT conversion (Fig. 11):")
	for _, tON := range []impress.Tick{tm.TRAS, tm.TRAS + tm.TRC/2, tm.TRAS + tm.TRC, tm.TREFI} {
		e := calc.FromTON(tON)
		fmt.Printf("  tON = %6d ns -> EACT = %.3f\n", tON.ToNs(), e.Float())
	}

	// 4. The precision knob (Fig. 12): fractional bits vs effective
	// threshold.
	fmt.Println("\neffective threshold vs fractional EACT bits:")
	for _, b := range []int{0, 4, 6, 7} {
		fmt.Printf("  b = %d: T*/TRH = %.3f\n", b, impress.FracBitsEffectiveThreshold(b))
	}

	// 5. A first full-system simulation through the Lab: ImPress-P under
	// a Graphene tracker on a streaming workload. Lab runs are
	// cancellable (the ctx argument) and return errors instead of
	// panicking; see examples/cancellation for the full lifecycle.
	lab, err := impress.NewLab()
	if err != nil {
		log.Fatal(err)
	}
	w, err := impress.WorkloadByName("copy")
	if err != nil {
		log.Fatal(err)
	}
	cfg := impress.DefaultSimConfig(w, impress.NewDesign(impress.ImpressP), impress.TrackerGraphene)
	cfg.WarmupInstructions, cfg.RunInstructions = 20_000, 100_000
	res, err := lab.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated %s under ImPress-P + Graphene: IPC sum %.3f over %d cycles\n",
		res.Workload, res.WeightedIPCSum, res.Cycles)
}
