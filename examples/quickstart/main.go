// Quickstart: the unified charge-loss model and the ImPress-P conversion
// of Row-Press time into equivalent activations.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"impress/internal/clm"
	"impress/internal/dram"
)

func main() {
	tm := dram.DDR5()

	// 1. The unified charge-loss model (Section IV): one number for any
	// interleaving of Rowhammer and Row-Press.
	model := clm.New(clm.AlphaLongDuration) // alpha = 0.48 covers all devices
	pattern := []clm.Access{
		{TON: tm.TRAS},            // a plain Rowhammer activation
		{TON: tm.TRAS + 4*tm.TRC}, // a short Row-Press hold
		{TON: tm.TREFI},           // a full-tREFI Row-Press hold
	}
	fmt.Printf("pattern damage: %.1f activation-equivalents over %.1f us\n",
		model.PatternTCL(pattern),
		float64(model.PatternTime(pattern).ToNs())/1000)

	// 2. Why Row-Press breaks Rowhammer defenses: rounds needed to flip a
	// bit at TRH = 4000 as the row-open time grows.
	fmt.Println("\nactivations needed for a bit flip (TRH = 4000):")
	for _, tonTRC := range []int64{1, 2, 8, 81, 406} {
		tON := tm.TRAS + dram.Tick(tonTRC-1)*tm.TRC
		rounds := model.RoundsToFlip(tON, 4000)
		fmt.Printf("  tON = %4d tRC: %6d rounds (%.0fx fewer than Rowhammer)\n",
			tonTRC, rounds, 4000/float64(rounds))
	}

	// 3. ImPress-P's fix: measure tON, convert to an Equivalent
	// Activation Count, and feed the existing Rowhammer tracker.
	calc := clm.NewCalculator(tm)
	fmt.Println("\nImPress-P EACT conversion (Fig. 11):")
	for _, tON := range []dram.Tick{tm.TRAS, tm.TRAS + tm.TRC/2, tm.TRAS + tm.TRC, tm.TREFI} {
		e := calc.FromTON(tON)
		fmt.Printf("  tON = %6d ns -> EACT = %.3f\n", tON.ToNs(), e.Float())
	}

	// 4. The precision knob (Fig. 12): fractional bits vs effective
	// threshold.
	fmt.Println("\neffective threshold vs fractional EACT bits:")
	for _, b := range []int{0, 4, 6, 7} {
		fmt.Printf("  b = %d: T*/TRH = %.3f\n", b, clm.FracBitsEffectiveThreshold(b))
	}
}
