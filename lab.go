package impress

import (
	"context"
	"fmt"
	"sync"

	"impress/internal/attack"
	"impress/internal/errs"
	"impress/internal/experiments"
	"impress/internal/resultstore"
	"impress/internal/security"
	"impress/internal/sim"
	"impress/internal/synth"
	"impress/internal/trace"
)

// ---- Run lifecycle: typed errors (DESIGN.md §9) ----
//
// Every context-first entry point classifies caller-input failures under
// these sentinels, matchable with errors.Is. Internal invariant
// violations (lockstep divergence, replay exhaustion, deadlock bounds)
// still panic — they are bugs, not inputs.
var (
	// ErrUnknownWorkload marks a workload spec that resolves to nothing:
	// a misspelled built-in name, an unknown "attack:<pattern>", or a
	// mix entry naming either.
	ErrUnknownWorkload = errs.ErrUnknownWorkload
	// ErrBadSpec marks structurally invalid caller input: a config
	// failing validation, an unreadable or corrupt trace file, an
	// unknown experiment ID.
	ErrBadSpec = errs.ErrBadSpec
	// ErrCancelled marks a run stopped by its context; errors wrapping
	// it also wrap the originating ctx.Err(), so both
	// errors.Is(err, ErrCancelled) and errors.Is(err, context.Canceled)
	// hold.
	ErrCancelled = errs.ErrCancelled
)

// ---- Run lifecycle: progress events ----

// Progress is one event on a Lab's progress stream: spec
// started/cache-hit/finished (with simulated cycles) and table-rendered
// notifications. See ProgressKind for the balance invariant.
type Progress = experiments.Progress

// ProgressKind enumerates progress event kinds. Every distinct
// simulation emits exactly one ProgressSpecStarted followed by exactly
// one of ProgressSpecCacheHit (served from the persistent store) or
// ProgressSpecFinished (simulated), so started == cache-hit + finished
// when a run completes; at parallelism 1 the full sequence is
// deterministic. Security-harness attack evaluations (sweeps over
// attack specs, adversarial synthesis) follow the same lifecycle under
// the distinct ProgressAttack* kinds, so counting ProgressSpec* events
// always counts performance simulations and nothing else.
type ProgressKind = experiments.ProgressKind

// The progress event kinds.
const (
	ProgressSpecStarted    = experiments.ProgressSpecStarted
	ProgressSpecCacheHit   = experiments.ProgressSpecCacheHit
	ProgressSpecFinished   = experiments.ProgressSpecFinished
	ProgressTableRendered  = experiments.ProgressTableRendered
	ProgressAttackStarted  = experiments.ProgressAttackStarted
	ProgressAttackCacheHit = experiments.ProgressAttackCacheHit
	ProgressAttackFinished = experiments.ProgressAttackFinished
)

// ---- The Lab ----

// Lab is a handle on the reproduction's run machinery — the one way in
// for new code. It owns the resources runs share (the persistent result
// store, the simulation worker pool, the progress stream) and exposes
// every run kind as a context-first, error-returning method: Run
// (performance simulation), Attack (security harness), Experiments
// (table/figure regeneration), Record and Replay (trace pipeline).
//
// All methods honor context cancellation promptly — simulations stop
// within one macro cycle, sweeps within one spec boundary — returning an
// error matching both ErrCancelled and ctx.Err(); invalid input returns
// errors matching ErrBadSpec or ErrUnknownWorkload instead of panicking.
// A Lab with a store makes every run restartable: results persist as
// each simulation completes (atomic writes), so a cancelled sweep rerun
// resumes warm.
//
// A Lab is safe for concurrent use. The zero-argument NewLab() Lab is
// fully functional: no store, GOMAXPROCS parallelism, event-driven
// clock, no progress stream.
type Lab struct {
	store       *resultstore.Store
	parallelism int
	clock       sim.ClockMode
	maxRelError float64
	annotateCI  bool
	progress    func(Progress)

	progressMu sync.Mutex
}

// LabOption configures a Lab under construction; see With*.
type LabOption func(*Lab) error

// NewLab builds a Lab from functional options. It fails only when an
// option does — e.g. WithStore on an uncreatable directory.
func NewLab(opts ...LabOption) (*Lab, error) {
	l := &Lab{}
	for _, opt := range opts {
		if err := opt(l); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// WithStore attaches the persistent, content-addressed result store at
// dir (created if needed; see ResultStore) to every run the Lab
// performs. An empty dir is a no-op, so CLI flag values can be passed
// through unconditionally.
func WithStore(dir string) LabOption {
	return func(l *Lab) error {
		if dir == "" {
			return nil
		}
		st, err := resultstore.Open(dir)
		if err != nil {
			return err
		}
		l.store = st
		return nil
	}
}

// WithResultStore attaches an already-open result store (nil detaches).
func WithResultStore(st *ResultStore) LabOption {
	return func(l *Lab) error {
		l.store = st
		return nil
	}
}

// WithParallelism bounds how many simulations run concurrently during
// sweeps (0 = GOMAXPROCS, 1 = serial). Output is byte-identical at
// every level.
func WithParallelism(n int) LabOption {
	return func(l *Lab) error {
		l.parallelism = n
		return nil
	}
}

// WithClock sets the default simulator clocking for configs that leave
// Clock at its zero value (explicitly non-zero configs win). The exact
// modes are bit-identical; the choice trades speed against the
// cycle-accurate reference and the lockstep cross-check. SimClockSampled
// is explicitly approximate — interval sampling with 95% confidence
// intervals on the estimates (see WithMaxRelError).
func WithClock(mode SimClockMode) LabOption {
	return func(l *Lab) error {
		switch mode {
		case SimClockEventDriven, SimClockCycleAccurate, SimClockLockstep, SimClockSampled:
			l.clock = mode
			return nil
		default:
			return fmt.Errorf("impress: %w: unknown clock mode %d", ErrBadSpec, mode)
		}
	}
}

// WithMaxRelError sets the sampled-mode convergence target: once every
// tracked metric's 95% CI relative half-width drops to target or below,
// the run stops sampling early. Zero keeps the fixed interval count;
// negative targets fail config validation at run time. It only affects
// configs running under SimClockSampled.
func WithMaxRelError(target float64) LabOption {
	return func(l *Lab) error {
		l.maxRelError = target
		return nil
	}
}

// WithCIAnnotations makes Experiments append a confidence-interval
// summary note to each simulation-backed table assembled from sampled
// runs (worst 95% relative half-width per metric, early-stop count).
// Exact-mode runs carry no estimates, so default-mode table output stays
// byte-identical even with the option set.
func WithCIAnnotations() LabOption {
	return func(l *Lab) error {
		l.annotateCI = true
		return nil
	}
}

// WithProgress attaches a progress callback. Events are delivered
// serialized (fn needs no locking) from whichever goroutine produced
// them; keep fn fast — it runs on the simulation path.
func WithProgress(fn func(Progress)) LabOption {
	return func(l *Lab) error {
		l.progress = fn
		return nil
	}
}

// Store returns the Lab's attached result store (nil when none), e.g.
// for cache accounting or maintenance alongside runs.
func (l *Lab) Store() *ResultStore { return l.store }

// emit delivers one progress event under the Lab-wide mutex. Runs the
// Lab drives directly (Run/Replay) call it, and newRunner routes sweep
// events through it too, so one lock serializes the callback across
// every concurrent entry point.
func (l *Lab) emit(p Progress) {
	if l.progress == nil {
		return
	}
	l.progressMu.Lock()
	defer l.progressMu.Unlock()
	l.progress(p)
}

// withClock applies the Lab's default clock mode to a config that left
// Clock at the zero value, and the Lab's convergence target to sampled
// configs that left MaxRelError unset.
func (l *Lab) withClock(cfg SimConfig) SimConfig {
	if cfg.Clock == SimClockEventDriven {
		cfg.Clock = l.clock
	}
	if cfg.Clock == SimClockSampled && cfg.MaxRelError == 0 {
		cfg.MaxRelError = l.maxRelError
	}
	return cfg
}

// Run executes one performance simulation. Invalid input — a config
// failing SimConfig.Validate, an unreadable trace file — returns an
// error matching ErrBadSpec; cancellation stops the simulator within
// one macro cycle and returns an error matching ErrCancelled and
// ctx.Err(). With a store attached the result is served from — and
// persisted to — the content-addressed cache, emitting spec
// started/cache-hit/finished progress events either way.
func (l *Lab) Run(ctx context.Context, cfg SimConfig) (SimResult, error) {
	// Uniform cancellation regardless of cache warmth: a dead context
	// fails here, exactly as it would through Lab.Experiments, instead
	// of succeeding whenever the store happens to be warm.
	if err := ctx.Err(); err != nil {
		return SimResult{}, fmt.Errorf("impress: run not started: %w", errs.Cancelled(err))
	}
	cfg = l.withClock(cfg)
	if l.store == nil && l.progress == nil {
		return sim.RunContext(ctx, cfg)
	}
	// The store key requires the canonical spec — for trace replays
	// that means reading and hashing the file. Without a store the
	// label is derived from the config directly, so a store-less
	// progress-observed replay does not read its trace twice; its
	// events carry an empty Key.
	var sp resultstore.Spec
	var key, label string
	if l.store != nil {
		var err error
		if sp, err = resultstore.SpecFor(cfg); err != nil {
			return SimResult{}, fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
		label = sp.Workload
		if label == "" {
			label = "trace:" + sp.TraceSHA256[:12]
		}
		key = string(sp.Key())
	} else {
		label = cfg.Workload.Name
		if cfg.TraceFile != "" {
			label = "trace:" + cfg.TraceFile
		}
	}
	label = fmt.Sprintf("%s/%s/%s", label, cfg.Design.Name(), cfg.Tracker)
	l.emit(Progress{Kind: ProgressSpecStarted, Spec: label, Key: key})
	if l.store != nil {
		if res, ok := l.store.Get(sp); ok {
			l.emit(Progress{Kind: ProgressSpecCacheHit, Spec: label, Key: key})
			return res, nil
		}
	}
	// With a store attached, warmup checkpoints ride the same cache: a
	// compatible cached checkpoint restores post-warmup state instead of
	// re-simulating warmup, and a cold run publishes one for the specs
	// that share its warmup prefix.
	var restored bool
	if l.store != nil {
		restored = l.store.AttachCheckpoints(&cfg)
	}
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		return SimResult{}, err
	}
	l.emit(Progress{Kind: ProgressSpecFinished, Spec: label, Key: key, Cycles: res.Cycles, WarmupRestored: restored})
	if l.store != nil {
		// A failed write loses persistence, not the run; it is counted
		// in the store's Counters.
		_ = l.store.Put(sp, res)
	}
	return res, nil
}

// Attack replays an adversarial pattern through the single-bank
// security harness. Invalid configs (see AttackConfig.Validate) return
// errors matching ErrBadSpec; cancellation is honored at access
// granularity.
func (l *Lab) Attack(ctx context.Context, cfg AttackConfig, p AttackPattern) (AttackResult, error) {
	return security.RunContext(ctx, cfg, p)
}

// ExperimentsOption narrows or observes a Lab.Experiments sweep.
type ExperimentsOption func(*experiments.RunOptions)

// ExperimentsOnly restricts the sweep to the given experiment IDs
// (unknown IDs fail with ErrBadSpec naming the known set).
func ExperimentsOnly(ids ...string) ExperimentsOption {
	return func(o *experiments.RunOptions) { o.Only = append(o.Only, ids...) }
}

// ExperimentsAnalytical restricts the sweep to the simulation-free
// experiments.
func ExperimentsAnalytical() ExperimentsOption {
	return func(o *experiments.RunOptions) { o.Analytical = true }
}

// ExperimentsOnTable streams each table to fn as soon as it is
// assembled (paper order), so long sweeps can render incrementally.
func ExperimentsOnTable(fn func(*ExperimentTable)) ExperimentsOption {
	return func(o *experiments.RunOptions) { o.OnTable = fn }
}

// Experiments regenerates the paper's tables and figures at the given
// scale. Unknown workloads in a custom scale and unknown experiment IDs
// return typed errors (ErrUnknownWorkload, ErrBadSpec) before or during
// the sweep instead of panicking mid-flight; cancellation drains the
// worker pool within one spec boundary and returns an error matching
// ErrCancelled — with a store attached, every simulation completed
// before the cancel persists, so the rerun resumes warm.
func (l *Lab) Experiments(ctx context.Context, scale ExperimentScale, opts ...ExperimentsOption) ([]*ExperimentTable, error) {
	var ro experiments.RunOptions
	for _, o := range opts {
		o(&ro)
	}
	return experiments.RunTables(ctx, l.newRunner(scale), ro)
}

// newRunner materializes an experiment runner carrying the Lab's
// resources. Progress is routed through l.emit, so one Lab-wide mutex
// serializes callbacks across every concurrent entry point (two
// overlapping Experiments calls, an Experiments beside a Run), keeping
// WithProgress's no-locking promise; the runner's clock default rides
// into every sweep simulation.
func (l *Lab) newRunner(scale ExperimentScale) *ExperimentRunner {
	r := experiments.NewRunner(scale)
	r.Parallelism = l.parallelism
	r.Store = l.store
	r.Clock = l.clock
	r.MaxRelError = l.maxRelError
	r.AnnotateCI = l.annotateCI
	if l.progress != nil {
		r.Progress = l.emit
	}
	return r
}

// ---- Adversarial attack synthesis (DESIGN.md §13) ----

// SynthConfig configures an adversarial synthesis search; see
// Lab.Synthesize.
type SynthConfig = synth.Config

// SynthReport is a completed search's outcome: the champion genome, the
// exact evaluation spec its margins were measured under, and the paper
// baseline it is compared against.
type SynthReport = synth.Report

// SynthGenStats is one generation's progress sample (best/mean fitness,
// current champion).
type SynthGenStats = synth.GenStats

// SynthEvaluator is the synthesis fitness seam: anything that evaluates
// attack specs in batch. A Lab-backed experiment runner satisfies it
// locally; a labd client satisfies it against a remote daemon.
type SynthEvaluator = synth.Evaluator

// AttackZooEntry is one archived champion's manifest in the attack zoo
// (testdata/attackzoo by default): the genome, the target it was bred
// against, and the margins recorded at archive time.
type AttackZooEntry = attack.ZooEntry

// Synthesize breeds an adversarial attack trace against one registered
// tracker: a deterministic evolutionary search over compact attack
// genomes, scored by the security harness. One (tracker, seed, budget)
// triple names exactly one champion. When cfg.Evaluator is nil the Lab
// supplies its own evaluator carrying the Lab's store and parallelism,
// so identical genomes — within a search, across searches, across
// processes sharing a store — evaluate once, and a re-run search
// resumes warm. Invalid configs return errors matching ErrBadSpec;
// cancellation stops the search at the next evaluation boundary with
// every completed evaluation persisted.
func (l *Lab) Synthesize(ctx context.Context, cfg SynthConfig) (SynthReport, error) {
	if cfg.Evaluator == nil {
		cfg.Evaluator = l.newRunner(experiments.QuickScale())
	}
	return synth.Synthesize(ctx, cfg)
}

// ArchiveAttack persists a completed search's champion into the attack
// zoo at dir (DefaultAttackZooDir() for the repository's regression
// zoo): the rendered replayable trace plus the manifest that
// reconstructs the exact evaluation its margins were measured under.
// Archiving the same champion twice converges on the same entry.
func (l *Lab) ArchiveAttack(ctx context.Context, dir string, rep SynthReport) (AttackZooEntry, error) {
	return synth.Archive(ctx, dir, rep)
}

// DefaultAttackZooDir locates the archive directory: $IMPRESS_ATTACKZOO
// when set, else the repository's testdata/attackzoo.
func DefaultAttackZooDir() string { return attack.DefaultZooDir() }

// AttackZooEntries lists every archived attack in dir, sorted by name.
// A missing directory is an empty zoo, not an error.
func AttackZooEntries(dir string) ([]AttackZooEntry, error) { return attack.ZooEntries(dir) }

// Record drains perCore requests per core from the workload's
// generators into a replayable trace (see RecordTrace for the
// replay-equivalence contract). Invalid counts return ErrBadSpec;
// cancellation is honored every few thousand generated requests.
func (l *Lab) Record(ctx context.Context, w Workload, cores, perCore int, seed uint64) (*WorkloadTrace, error) {
	return trace.RecordContext(ctx, w, cores, perCore, seed)
}

// RecordFile is Record straight to a version-2 trace file at path,
// streaming frames to disk as they fill: memory stays bounded by the
// per-core frame buffers no matter how large the recording, so it is
// the way to produce traces bigger than RAM. On any failure — invalid
// counts (ErrBadSpec), cancellation, an I/O error — the partial file is
// removed.
func (l *Lab) RecordFile(ctx context.Context, w Workload, cores, perCore int, seed uint64, path string) error {
	return trace.RecordFile(ctx, w, cores, perCore, seed, path)
}

// Replay runs the recorded trace at path through the full simulator:
// cfg supplies the system and defense configuration while the trace
// supplies the request streams, core count and seed. Replays share
// cache entries with the live runs they were recorded from (the
// replay-equivalence contract makes them interchangeable).
func (l *Lab) Replay(ctx context.Context, path string, cfg SimConfig) (SimResult, error) {
	cfg.TraceFile = path
	return l.Run(ctx, cfg)
}

// defaultLab serves the deprecated free-function wrappers: no store, no
// progress stream, GOMAXPROCS parallelism — exactly the behavior the
// free functions always had.
var defaultLab = &Lab{}
