package impress_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"math"
	"os"
	"reflect"
	"testing"

	"impress"
	"impress/internal/attack"
	"impress/internal/core"
	"impress/internal/experiments"
	"impress/internal/resultstore"
	"impress/internal/sim"
	"impress/internal/trace"
)

// TestArchivedAttacksStayBounded is the attack zoo's regression tier:
// every champion archived under testdata/attackzoo is replayed against
// the tracker it was bred to defeat, and the margins recorded in its
// manifest must reproduce. The harness is deterministic, so drift here
// means a tracker, the harness, or the genome renderer changed behavior
// — exactly the regressions the zoo exists to catch. Each entry is also
// checked for artifact integrity (the rendered trace still hashes to
// the manifest's digest) and for simulator determinism (the archived
// workload produces bit-identical results across clock modes).
func TestArchivedAttacksStayBounded(t *testing.T) {
	dir := impress.DefaultAttackZooDir()
	entries, err := impress.AttackZooEntries(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("attack zoo is empty: the repo ships at least one archived champion")
	}
	r := experiments.NewRunner(experiments.QuickScale())
	for _, e := range entries {
		t.Run(e.Name, func(t *testing.T) {
			data, err := os.ReadFile(attack.ZooTracePath(dir, e.Name))
			if err != nil {
				t.Fatalf("archived trace missing: %v", err)
			}
			if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != e.TraceSHA256 {
				t.Errorf("trace digest drifted from the manifest's %s", e.TraceSHA256)
			}

			spec, err := experiments.ZooEntrySpec(e)
			if err != nil {
				t.Fatal(err)
			}
			results, err := r.EvaluateAttacks(context.Background(), []resultstore.AttackSpec{spec})
			if err != nil {
				t.Fatal(err)
			}
			res := results[0]
			if drift := relDrift(res.MaxDamage, e.MaxDamage); drift > e.Tolerance {
				t.Errorf("peak damage %.1f drifted from archived %.1f (rel %.2g > tolerance %.2g)",
					res.MaxDamage, e.MaxDamage, drift, e.Tolerance)
			}
			if drift := relDrift(res.Slowdown(), e.Slowdown); drift > e.Tolerance {
				t.Errorf("slowdown %.6f drifted from archived %.6f", res.Slowdown(), e.Slowdown)
			}
			if res.MaxDamage <= e.PaperBestDamage {
				t.Errorf("champion damage %.1f no longer beats the paper's best pattern (%.1f)",
					res.MaxDamage, e.PaperBestDamage)
			}

			// The archived workload must simulate deterministically: the
			// event-driven clock replays it bit-identically to
			// cycle-accurate stepping.
			w, err := trace.WorkloadByName("attackzoo:" + e.Name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.DefaultConfig(w, core.NewDesign(core.ImpressP), sim.TrackerKind(e.Tracker))
			cfg.DesignTRH = e.DesignTRH
			cfg.WarmupInstructions = 10_000
			cfg.RunInstructions = 40_000
			cfg.Clock = sim.ClockCycleAccurate
			ca := sim.Run(cfg)
			cfg.Clock = sim.ClockEventDriven
			if ev := sim.Run(cfg); !reflect.DeepEqual(ca, ev) {
				t.Errorf("replay diverged across clock modes:\nCA %+v\nEV %+v", ca, ev)
			}
		})
	}
}

// relDrift is |got-want| / max(|want|, 1): relative for the large
// damage numbers, absolute near zero (slowdowns).
func relDrift(got, want float64) float64 {
	return math.Abs(got-want) / math.Max(math.Abs(want), 1)
}
