package impress_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"testing"
)

// legacyNoCtx freezes the public functions that predate the Lab (kept as
// deprecated wrappers) and the pure constructors/calculators that
// perform no run work. Everything else exported from package impress
// must take a context.Context as its first parameter.
//
// Do NOT add a new run-performing entry point here: give it a ctx (or
// hang it off Lab). This list only ever grows for pure
// constructors/converters with a review note in the PR.
var legacyNoCtx = map[string]bool{
	// Deprecated pre-Lab run wrappers (panic, uncancellable — kept for
	// compatibility, delegate to the default Lab).
	"RunSim": true, "RunAttack": true, "Experiments": true,
	"ExperimentsParallel": true, "AnalyticalExperiments": true,
	"RecordTrace": true, "MonteCarlo": true, "SearchWorstCase": true,

	// Pure constructors, converters and calculators: no run to cancel.
	"NewModel": true, "NewEACTCalculator": true, "FracBitsEffectiveThreshold": true,
	"DDR5": true, "Ns": true, "NewDesign": true, "NewBankPolicy": true,
	"NewRand": true, "NewGraphene": true, "NewPARA": true, "NewMithril": true,
	"NewMINT": true, "MINTToleratedTRH": true, "NewPRAC": true,
	"StorageComparison": true, "MINTStorageBytes": true,
	"Workloads": true, "WorkloadByName": true, "MixWorkloads": true,
	"DecodeTrace": true, "ReadTraceFile": true, "DefaultSimConfig": true,
	"OpenResultStore": true, "ResultSpecFor": true,
	"ExperimentTRH": true, "ExperimentRFM": true, "NewExperimentRunner": true,
	"QuickScale": true, "StandardScale": true, "FullScale": true,

	// Lab construction and options.
	"NewLab": true, "WithStore": true, "WithResultStore": true,
	"WithParallelism": true, "WithClock": true, "WithProgress": true,
	"ExperimentsOnly": true, "ExperimentsAnalytical": true, "ExperimentsOnTable": true,
}

// labMethodsNoCtx are Lab methods that perform no run work.
var labMethodsNoCtx = map[string]bool{
	"Store": true,
}

// TestPublicEntryPointsTakeContext is the vet-style API gate of the
// context-first redesign: every exported function or Lab method in
// package impress either takes a context.Context first or is frozen in
// the legacy/pure allowlists above. A new entry point that forgets its
// ctx fails here with instructions.
func TestPublicEntryPointsTakeContext(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["impress"]
	if !ok {
		t.Fatalf("package impress not found in %v", pkgs)
	}
	var violations []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !fn.Name.IsExported() {
				continue
			}
			name := fn.Name.Name
			switch {
			case fn.Recv == nil:
				if legacyNoCtx[name] || firstParamIsContext(fn) {
					continue
				}
				violations = append(violations, name)
			case receiverIsLab(fn):
				if labMethodsNoCtx[name] || firstParamIsContext(fn) {
					continue
				}
				violations = append(violations, "Lab."+name)
			}
		}
	}
	sort.Strings(violations)
	for _, v := range violations {
		t.Errorf("public entry point %s does not take a context.Context as its first parameter; "+
			"give it one (preferred), or — only for a pure constructor/converter — add it to the "+
			"allowlist in api_ctx_test.go with justification", v)
	}
}

func firstParamIsContext(fn *ast.FuncDecl) bool {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	sel, ok := params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	return ok && ident.Name == "context" && sel.Sel.Name == "Context"
}

func receiverIsLab(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	typ := fn.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	ident, ok := typ.(*ast.Ident)
	return ok && ident.Name == "Lab"
}
