package impress_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"impress"
)

// These tests exercise the public facade end to end: a downstream user of
// the library should be able to reproduce the paper's headline claims
// through the impress package alone.

func TestPublicModelAPI(t *testing.T) {
	tm := impress.DDR5()
	model := impress.NewModel(impress.AlphaLongDuration)
	if got := model.AccessTCL(tm.TRAS); got != 1 {
		t.Fatalf("AccessTCL(tRAS) = %v", got)
	}
	calc := impress.NewEACTCalculator(tm)
	if got := calc.FromTON(tm.TRAS + tm.TRC); got != 2*impress.One {
		t.Fatalf("EACT(tRAS+tRC) = %v, want 2", got)
	}
	if impress.FracBitsEffectiveThreshold(7) != 1 {
		t.Fatal("7 fractional bits must be exact")
	}
}

func TestPublicAttackAPIHeadline(t *testing.T) {
	tm := impress.DDR5()
	const trh = 4000
	run := func(kind impress.DesignKind) float64 {
		cfg := impress.AttackConfig{
			Design:    impress.NewDesign(kind),
			DesignTRH: trh,
			AlphaTrue: impress.AlphaLongDuration,
			Tracker:   func(t float64) impress.Tracker { return impress.NewGraphene(t) },
		}
		//lint:ignore SA1019 the test pins the deprecated wrapper's behavior
		res := impress.RunAttack(cfg, &impress.RowPressPattern{
			Row: 1 << 20, TON: tm.TREFI, Timings: tm,
		})
		return res.MaxDamage
	}
	broken := run(impress.NoRP)
	fixed := run(impress.ImpressP)
	if broken < trh {
		t.Fatalf("Row-Press should break the unprotected tracker (damage %v)", broken)
	}
	if fixed >= trh {
		t.Fatalf("ImPress-P should contain Row-Press (damage %v)", fixed)
	}
	if broken/fixed < 10 {
		t.Fatalf("expected an order-of-magnitude contrast: %v vs %v", broken, fixed)
	}
}

func TestPublicDesignThresholds(t *testing.T) {
	const trh = 4000
	if got := impress.NewDesign(impress.ImpressP).TrackerTRH(trh); got != trh {
		t.Fatalf("ImPress-P must keep TRH, got %v", got)
	}
	if got := impress.NewDesign(impress.ImpressN).TrackerTRH(trh); got != trh/2 {
		t.Fatalf("ImPress-N at alpha=1 must halve TRH, got %v", got)
	}
}

func TestPublicWorkloads(t *testing.T) {
	if n := len(impress.Workloads()); n != 20 {
		t.Fatalf("workloads = %d, want 20", n)
	}
	if _, err := impress.WorkloadByName("triad"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSimAPI(t *testing.T) {
	w, err := impress.WorkloadByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := impress.DefaultSimConfig(w, impress.NewDesign(impress.ImpressP), impress.TrackerGraphene)
	cfg.WarmupInstructions = 5_000
	cfg.RunInstructions = 20_000
	//lint:ignore SA1019 the test pins the deprecated wrapper's behavior
	res := impress.RunSim(cfg)
	if len(res.IPC) != 8 || res.WeightedIPCSum <= 0 {
		t.Fatalf("bad sim result: %+v", res)
	}
}

func TestPublicTraceRecordReplay(t *testing.T) {
	w, err := impress.WorkloadByName("mix:gcc,attack:hammer")
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1019 the test pins the deprecated wrapper's behavior
	rec := impress.RecordTrace(w, 2, 2_000, 1)
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := impress.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := decoded.Workload()
	if err != nil {
		t.Fatal(err)
	}
	cfg := impress.DefaultSimConfig(replay, impress.NewDesign(impress.ImpressP), impress.TrackerGraphene)
	cfg.Cores = 2
	cfg.WarmupInstructions = 1_000
	cfg.RunInstructions = 5_000
	live := cfg
	live.Workload = w
	//lint:ignore SA1019 the test pins the deprecated wrapper's behavior
	if a, b := impress.RunSim(cfg), impress.RunSim(live); !reflect.DeepEqual(a, b) {
		t.Fatalf("replayed run differs from live run:\nreplay %+v\nlive   %+v", a, b)
	}
}

func TestPublicTrackers(t *testing.T) {
	rng := impress.NewRand(1)
	for _, tr := range []impress.Tracker{
		impress.NewGraphene(4000),
		impress.NewPARA(4000, rng),
		impress.NewMithril(4000, 80),
		impress.NewMINT(80, impress.NewRand(2)),
	} {
		tr.OnActivation(1, impress.One)
		tr.OnRFM()
		tr.ResetWindow()
	}
	if impress.MINTToleratedTRH(80) != 1600 {
		t.Fatal("MINT tolerated threshold wrong")
	}
}

func TestPublicExperiments(t *testing.T) {
	tabs := impress.AnalyticalExperiments()
	if len(tabs) < 10 {
		t.Fatalf("analytical experiments = %d", len(tabs))
	}
	// Scales exist and differ.
	q, f := impress.QuickScale(), impress.FullScale()
	if q.Run >= f.Run {
		t.Fatal("quick scale should be shorter than full")
	}
	if math.IsNaN(float64(q.Run)) {
		t.Fatal("unreachable; silence unused math import complaints")
	}
}

func TestPublicSearchWorstCase(t *testing.T) {
	cfg := impress.AttackConfig{
		Design:    impress.NewDesign(impress.ImpressP),
		DesignTRH: 4000,
		AlphaTrue: 1,
		Tracker:   func(trh float64) impress.Tracker { return impress.NewGraphene(trh) },
	}
	sr := impress.SearchWorstCase(cfg)
	if sr.BestResult.MaxDamage >= 4000 {
		t.Fatalf("search broke ImPress-P: %s at %v", sr.BestPattern, sr.BestResult.MaxDamage)
	}
	if len(sr.All) < 10 {
		t.Fatalf("strategy grid too small: %d", len(sr.All))
	}
}

func TestPublicPRAC(t *testing.T) {
	p := impress.NewPRAC(4000)
	if !p.InDRAM() || p.Name() != "prac" {
		t.Fatal("PRAC facade metadata wrong")
	}
	p.OnActivation(1, impress.One)
	p.OnRFM()
}

func TestPublicExperimentRunner(t *testing.T) {
	scale := impress.ExperimentScale{
		Name: "api-test", Warmup: 5_000, Run: 20_000, Workloads: []string{"gcc"},
	}
	r := impress.NewExperimentRunner(scale)
	r.Parallelism = 2
	w, err := impress.WorkloadByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	spec := impress.ExperimentRunSpec{
		Workload: w, Design: impress.NewDesign(impress.ImpressP),
		Tracker:   impress.TrackerGraphene,
		DesignTRH: impress.ExperimentTRH(4000), RFMTH: impress.ExperimentRFM(80),
	}
	r.Prefetch([]impress.ExperimentRunSpec{spec})
	res := r.Run(spec)
	if len(res.IPC) != 8 || res.WeightedIPCSum <= 0 {
		t.Fatalf("bad runner result: %+v", res)
	}
}

func TestPublicScales(t *testing.T) {
	q, s, f := impress.QuickScale(), impress.StandardScale(), impress.FullScale()
	if !(q.Run < s.Run && s.Run < f.Run) {
		t.Fatalf("scale ordering wrong: %d %d %d", q.Run, s.Run, f.Run)
	}
	if len(s.Workloads) != 0 {
		t.Fatal("standard scale must cover all workloads")
	}
}

func TestPublicResultStore(t *testing.T) {
	store, err := impress.OpenResultStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := impress.WorkloadByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := impress.DefaultSimConfig(w, impress.NewDesign(impress.ImpressP), impress.TrackerGraphene)
	cfg.WarmupInstructions, cfg.RunInstructions = 1_000, 5_000
	sp, err := impress.ResultSpecFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The clock mode must not split the key (all modes are bit-identical).
	ca := cfg
	ca.Clock = impress.SimClockCycleAccurate
	if sp2, err := impress.ResultSpecFor(ca); err != nil || sp2.Key() != sp.Key() {
		t.Fatalf("clock mode split the result key: %v", err)
	}
	if _, ok := store.Get(sp); ok {
		t.Fatal("empty store must miss")
	}
	//lint:ignore SA1019 the test pins the deprecated wrapper's behavior
	res := impress.RunSim(cfg)
	if err := store.Put(sp, res); err != nil {
		t.Fatal(err)
	}
	// A scale-scoped runner sharing the directory serves the result
	// without simulating.
	scale := impress.ExperimentScale{
		Name: "store-api-test", Warmup: 1_000, Run: 5_000, Workloads: []string{"gcc"},
	}
	r := impress.NewExperimentRunner(scale)
	if r.Store, err = impress.OpenResultStore(store.Dir()); err != nil {
		t.Fatal(err)
	}
	got := r.Run(impress.ExperimentRunSpec{
		Workload: w, Design: impress.NewDesign(impress.ImpressP), Tracker: impress.TrackerGraphene,
	})
	if r.Sims() != 0 {
		t.Fatalf("runner simulated %d times; the store should have served the result", r.Sims())
	}
	if got.WeightedIPCSum != res.WeightedIPCSum || got.Cycles != res.Cycles {
		t.Fatalf("stored result drifted: %+v vs %+v", got, res)
	}
}
